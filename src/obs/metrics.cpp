#include "obs/metrics.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {

double MetricEntry::value() const {
  if (u64 != nullptr) return static_cast<double>(*u64);
  if (i64 != nullptr) return static_cast<double>(*i64);
  if (gauge) return gauge();
  return 0.0;
}

void MetricsRegistry::add_counter(std::string name, std::int16_t node,
                                  std::int32_t subflow, const std::uint64_t* p) {
  E2EFA_ASSERT(p != nullptr);
  MetricEntry e;
  e.name = std::move(name);
  e.node = node;
  e.subflow = subflow;
  e.kind = MetricKind::kCounter;
  e.u64 = p;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_counter(std::string name, std::int16_t node,
                                  std::int32_t subflow, const std::int64_t* p) {
  E2EFA_ASSERT(p != nullptr);
  MetricEntry e;
  e.name = std::move(name);
  e.node = node;
  e.subflow = subflow;
  e.kind = MetricKind::kCounter;
  e.i64 = p;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_gauge(std::string name, std::int16_t node,
                                std::int32_t subflow, std::function<double()> fn) {
  E2EFA_ASSERT(fn != nullptr);
  MetricEntry e;
  e.name = std::move(name);
  e.node = node;
  e.subflow = subflow;
  e.kind = MetricKind::kGauge;
  e.gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

const MetricEntry* MetricsRegistry::find(const std::string& name,
                                         std::int16_t node,
                                         std::int32_t subflow) const {
  for (const MetricEntry& e : entries_)
    if (e.name == name && e.node == node && e.subflow == subflow) return &e;
  return nullptr;
}

double MetricsRegistry::sum(const std::string& name) const {
  double total = 0.0;
  for (const MetricEntry& e : entries_)
    if (e.name == name) total += e.value();
  return total;
}

std::vector<double> MetricsRegistry::values(const std::string& name) const {
  std::vector<double> out;
  for (const MetricEntry& e : entries_)
    if (e.name == name) out.push_back(e.value());
  return out;
}

namespace {

std::string double_array_json(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += strformat("%.17g", v[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string metrics_sample_jsonl(const MetricsSample& s) {
  const std::string goodput = double_array_json(s.flow_goodput_pps);
  std::string line = strformat(
      "{\"t_s\":%.17g,\"flow_goodput_pps\":%s,\"jain\":%.17g,"
      "\"queue_p50\":%.17g,\"queue_p95\":%.17g,\"queue_max\":%.17g,"
      "\"mac_retry_rate\":%.17g,\"channel_utilization\":%.17g,"
      "\"ctrl_bytes\":%.17g,\"ctrl_overhead\":%.17g,"
      "\"ctrl_retransmits\":%.17g,\"ctrl_seq_gaps\":%.17g",
      s.t_s, goodput.c_str(), s.jain, s.queue_depth_p50, s.queue_depth_p95,
      s.queue_depth_max, s.mac_retry_rate, s.channel_utilization, s.ctrl_bytes,
      s.ctrl_overhead, s.ctrl_retransmits, s.ctrl_seq_gaps);
  // Transport columns appear only for elastic runs, so open-loop CBR
  // artifacts stay byte-identical to their pre-transport goldens.
  if (!s.flow_cwnd.empty())
    line += strformat(",\"flow_cwnd\":%s,\"flow_srtt_s\":%s,"
                      "\"flow_delivery_pps\":%s",
                      double_array_json(s.flow_cwnd).c_str(),
                      double_array_json(s.flow_srtt_s).c_str(),
                      double_array_json(s.flow_delivery_pps).c_str());
  line += "}";
  return line;
}

bool write_metrics_jsonl(const MetricsTimeSeries& ts, const std::string& path,
                         std::string* error) {
  E2EFA_ASSERT(error != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open metrics file: " + path;
    return false;
  }
  std::string reconv = "[";
  for (std::size_t e = 0; e < ts.reconv_s.size(); ++e) {
    if (e > 0) reconv += ",";
    reconv += strformat("%.17g", ts.reconv_s[e]);
  }
  reconv += "]";
  const std::string header =
      strformat("{\"metrics_period_s\":%.17g,\"samples\":%zu,\"reconv_s\":%s}\n",
                ts.period_s, ts.samples.size(), reconv.c_str());
  std::fwrite(header.data(), 1, header.size(), f);
  for (const MetricsSample& s : ts.samples) {
    const std::string line = metrics_sample_jsonl(s);
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

}  // namespace e2efa
