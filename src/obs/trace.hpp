// Structured event tracing for the simulator (the observability layer's
// "flight recorder").
//
// Design goals, in order:
//   1. Zero overhead when disabled. Instrumented components hold a
//      `TraceSink*` that defaults to null; the entire hot-path cost of a
//      disabled trace point is one pointer test. Whole categories can
//      additionally be compiled out with -DE2EFA_TRACE_COMPILED_CATEGORIES
//      (a bitmask over TraceCat), which folds the emit body to nothing at
//      the call site via `if constexpr`.
//   2. Determinism. Emission is strictly passive: no RNG, no scheduled
//      events, no time queries — callers pass the simulation timestamp.
//      The same seed therefore produces byte-identical trace files, and
//      enabling tracing cannot perturb the simulated trajectory.
//   3. Bounded memory. A sink streaming to a file buffers a fixed number
//      of records and flushes the buffer whenever it fills; a sink without
//      a file keeps everything in memory (tests, analysis in-process).
//
// Records are fixed-size 48-byte POD rows (nanosecond timestamp, typed
// event, node, two int arguments, a causal span/parent id pair, two double
// arguments); the binary file is a 16-byte header followed by raw records,
// and every record can also be rendered as one JSON line (JSONL) for
// ad-hoc tooling.
//
// Causal spans (observability v2): a record may carry a nonzero `span` id
// (this record is a node in a causal chain) and a nonzero `parent` id (the
// span that caused it). Span ids are allocated by TraceSink::new_span() in
// emission order, so they are deterministic per (seed, filter) like
// everything else; 0 always means "no span". Offline tools rebuild the
// chain from (span, parent) alone — see obs/trace_analysis.hpp.
//
// Flight recorder: set_ring(capacity) turns a sink into a bounded
// in-memory ring of the most recent records. The ring never flushes or
// grows, so it can stay armed for an entire run at the cost of one 48-byte
// copy per record; CheckContext snapshots it when an invariant trips
// (see src/check/check.hpp) and write_trace_file() dumps the snapshot.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace e2efa {

/// Trace categories: one bit each, used by both the runtime filter
/// (--trace-filter) and the compile-time mask.
enum class TraceCat : std::uint32_t {
  kMeta = 0,     ///< Run/flow/subflow structure (always useful; see below).
  kPhy = 1,      ///< Frame tx / rx / collision / fault at the channel.
  kMac = 2,      ///< Retry and retry-limit drop decisions.
  kBackoff = 3,  ///< Backoff draws with the Q/R tag-lag terms.
  kTag = 4,      ///< Per-subflow start / internal-finish / external-finish tags.
  kVClock = 5,   ///< Node virtual-clock updates.
  kQueue = 6,    ///< Queue enqueue / drop with post-op depth.
  kFault = 7,    ///< Fault epoch transitions.
  kLp = 8,       ///< Phase-1 (re-)solves and the resulting flow targets.
  kFlow = 9,     ///< End-to-end deliveries per logical flow.
  kCtrl = 10,    ///< In-band allocation control plane (HELLO/CONSTRAINT/RATE).
  kTransport = 11,  ///< Elastic transport: sends, ACK path, retransmits, cwnd.
};

constexpr std::uint32_t trace_bit(TraceCat c) {
  return 1u << static_cast<std::uint32_t>(c);
}
constexpr std::uint32_t kTraceCategoryCount = 12;
constexpr std::uint32_t kTraceAllCategories = (1u << kTraceCategoryCount) - 1u;

#ifndef E2EFA_TRACE_COMPILED_CATEGORIES
#define E2EFA_TRACE_COMPILED_CATEGORIES 0xffffffffu
#endif
/// Categories compiled into the binary; others cost nothing at runtime.
constexpr std::uint32_t kTraceCompiledMask = E2EFA_TRACE_COMPILED_CATEGORIES;

/// Typed trace events. The (a, b, v0, v1) payload meaning is per type and
/// documented here once; to_string gives the JSONL name.
enum class TraceEvent : std::uint16_t {
  kRunMeta = 0,         ///< t=0. a=node count, b=flow count, v0=channel bps, v1=payload bytes.
  kSubflowMeta = 1,     ///< t=0. node=source, a=subflow, b=flow, v0=hop index.
  kFrameTx = 2,         ///< node=sender, a=FrameType, b=receiver, v0=bytes, v1=1 if RF-silent (crashed sender).
  kFrameRx = 3,         ///< node=receiver, a=FrameType, b=sender, v0=bytes.
  kFrameCollision = 4,  ///< node=receiver, b=sender, v0=bytes.
  kFrameFaulted = 5,    ///< node=receiver, a=0 dead-node/link, 1 loss draw, b=sender.
  kMacRetry = 6,        ///< node, a=retry count after this timeout.
  kMacDrop = 7,         ///< node, a=subflow, b=retries at the limit.
  kBackoffDraw = 8,     ///< node, a=slots drawn, b=retries, v0=Q slots, v1=last ACK R slots.
  kTagStart = 9,        ///< node, a=subflow, v0=start tag S (µs).
  kTagInternalFinish = 10,  ///< node, a=subflow, v0=internal finish tag I (µs).
  kTagExternalFinish = 11,  ///< node, a=subflow, v0=external finish tag E (µs).
  kVClockUpdate = 12,   ///< node, v0=new virtual clock, v1=previous (µs).
  kQueueEnqueue = 13,   ///< node, a=subflow, b=queue depth after the enqueue.
  kQueueDrop = 14,      ///< node, a=subflow, b=queue depth (full, drop-tail).
  kFaultEpoch = 15,     ///< a=epoch index, v0=epoch start (seconds).
  kLpResolve = 16,      ///< a=epoch index, b=LpStatus, v0=epoch start (seconds).
  kFlowTarget = 17,     ///< a=logical flow, v0=target share (units of B); 0 = inactive/suspended.
  kDelivery = 18,       ///< node=destination, a=logical flow, v0=end-to-end delay (s).
  kCtrlSend = 19,       ///< node=sender, a=CtrlMsg::Kind, b=directed target (-1 bcast), v0=wire bytes, v1=seq.
  kCtrlRecv = 20,       ///< node=receiver, a=CtrlMsg::Kind, b=origin, v0=wire bytes, v1=1 if piggybacked.
  kCtrlSolve = 21,      ///< node=source, a=flow, b=LpStatus, v0=solved share (units of B), v1=accumulated clique count.
  kCtrlRate = 22,       ///< node, a=subflow, b=flow, v0=applied lane share (units of B).
  kCtrlAdmit = 23,      ///< node, a=candidate flow, b=local verdict (1 admit), v0=worst local clique load.
  kCtrlRetransmit = 24, ///< node, a=CtrlMsg::Kind resent, b=flow, v0=retransmit count, v1=backoff wait (ticks).
  kCtrlSeqGap = 25,     ///< node=receiver, a=origin, b=gap (messages missed), v0=expected seq, v1=got seq.
  kCtrlReconv = 26,     ///< run-global, a=epoch index, v0=re-convergence time (s), v1=epoch boundary (s).
  kTransSend = 27,        ///< node=source, a=flow, b=0, v0=seq, v1=cwnd; parent=last kTransAckRx span (the ACK clock).
  kTransAckTx = 28,       ///< node=sink/relay, a=flow, b=next upstream hop, v0=cumack, v1=echo seq; span owned, parent=cause.
  kTransAckRx = 29,       ///< node=source, a=flow, b=sink, v0=cumack, v1=echo seq; span owned, parent=carrying kTransAckTx.
  kTransRetransmit = 30,  ///< node=source, a=flow, b=1 timeout / 0 dupack, v0=seq, v1=cwnd.
  kTransTimeout = 31,     ///< node=source, a=flow, b=backoff exponent, v0=RTO (s), v1=srtt (s).
  kTransCwnd = 32,        ///< node=source, a=flow, v0=cwnd (pkts), v1=srtt (s); emitted when floor(cwnd) moves.
};

/// Category an event belongs to (drives filtering).
constexpr TraceCat trace_category(TraceEvent e) {
  switch (e) {
    case TraceEvent::kRunMeta:
    case TraceEvent::kSubflowMeta: return TraceCat::kMeta;
    case TraceEvent::kFrameTx:
    case TraceEvent::kFrameRx:
    case TraceEvent::kFrameCollision:
    case TraceEvent::kFrameFaulted: return TraceCat::kPhy;
    case TraceEvent::kMacRetry:
    case TraceEvent::kMacDrop: return TraceCat::kMac;
    case TraceEvent::kBackoffDraw: return TraceCat::kBackoff;
    case TraceEvent::kTagStart:
    case TraceEvent::kTagInternalFinish:
    case TraceEvent::kTagExternalFinish: return TraceCat::kTag;
    case TraceEvent::kVClockUpdate: return TraceCat::kVClock;
    case TraceEvent::kQueueEnqueue:
    case TraceEvent::kQueueDrop: return TraceCat::kQueue;
    case TraceEvent::kFaultEpoch: return TraceCat::kFault;
    case TraceEvent::kLpResolve:
    case TraceEvent::kFlowTarget: return TraceCat::kLp;
    case TraceEvent::kDelivery: return TraceCat::kFlow;
    case TraceEvent::kCtrlSend:
    case TraceEvent::kCtrlRecv:
    case TraceEvent::kCtrlSolve:
    case TraceEvent::kCtrlRate:
    case TraceEvent::kCtrlAdmit:
    case TraceEvent::kCtrlRetransmit:
    case TraceEvent::kCtrlSeqGap:
    case TraceEvent::kCtrlReconv: return TraceCat::kCtrl;
    case TraceEvent::kTransSend:
    case TraceEvent::kTransAckTx:
    case TraceEvent::kTransAckRx:
    case TraceEvent::kTransRetransmit:
    case TraceEvent::kTransTimeout:
    case TraceEvent::kTransCwnd: return TraceCat::kTransport;
  }
  return TraceCat::kMeta;
}

/// Number of defined TraceEvent values; readers reject anything >= this
/// (a corrupt record, not a format they should silently accept).
constexpr std::uint16_t kTraceEventCount =
    static_cast<std::uint16_t>(TraceEvent::kTransCwnd) + 1;

const char* to_string(TraceEvent e);
const char* to_string(TraceCat c);

/// One fixed-size trace row. The explicit `pad` keeps the on-disk bytes
/// fully determined (fwrite of the struct must not leak uninitialized
/// padding into the file).
struct TraceRecord {
  TimeNs t = 0;            ///< Simulation time, nanoseconds.
  std::uint16_t type = 0;  ///< TraceEvent.
  std::int16_t node = -1;  ///< Node the event happened at (-1: run-global).
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::uint32_t span = 0;    ///< Causal span id of this record (0 = none).
  std::uint32_t parent = 0;  ///< Span id that caused this record (0 = root).
  std::uint32_t pad = 0;
  double v0 = 0.0;
  double v1 = 0.0;

  TraceEvent event() const { return static_cast<TraceEvent>(type); }
  bool operator==(const TraceRecord&) const = default;
};
static_assert(sizeof(TraceRecord) == 48, "trace record layout is part of the file format");

/// Parses a comma-separated category list ("phy,backoff,queue"; "all" for
/// everything) into a filter mask. kMeta is always included — structural
/// records cost a handful of rows and every tool needs them. Returns false
/// and fills *error on an unknown category name.
bool parse_trace_filter(const std::string& spec, std::uint32_t* mask,
                        std::string* error);

class TraceSink {
 public:
  enum class Format { kBinary, kJsonl };

  /// `buffer_records` bounds memory in streaming mode (the buffer flushes
  /// to the file whenever it fills). In in-memory mode (no open()) the
  /// buffer simply grows.
  explicit TraceSink(std::size_t buffer_records = 1u << 16);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Starts streaming records to `path`. Returns false and fills *error if
  /// the file cannot be created. Call before the run; close() finalizes
  /// (binary format: patches the header's record count). Mutually
  /// exclusive with set_ring().
  bool open(const std::string& path, Format format, std::string* error);
  /// Flushes buffered records and closes the file (no-op in memory mode).
  void close();

  /// Flight-recorder mode: keep only the most recent `capacity` records in
  /// a bounded in-memory ring (older records are overwritten, never
  /// flushed). Call before any record; mutually exclusive with open().
  void set_ring(std::size_t capacity);
  bool ring_mode() const { return ring_capacity_ != 0; }

  /// The most recent records in chronological order: the ring contents in
  /// ring mode, otherwise a copy of the in-memory/unflushed buffer. This is
  /// what the flight-recorder dump contains.
  std::vector<TraceRecord> recent_records() const;

  /// Runtime category filter (default: everything).
  void set_filter(std::uint32_t mask) { mask_ = mask | trace_bit(TraceCat::kMeta); }
  std::uint32_t filter() const { return mask_; }

  /// True when the category passes both the compiled and the runtime mask.
  /// Call sites whose record() *arguments* are expensive to compute (e.g.
  /// the Q/R tag-lag sums) must test this first, so a filtered-out category
  /// costs no more than a disabled sink.
  template <TraceCat Cat>
  bool enabled() const {
    if constexpr ((kTraceCompiledMask & trace_bit(Cat)) == 0u)
      return false;
    else
      return (mask_ & trace_bit(Cat)) != 0u;
  }

  /// Emits one record. The category is a template parameter so that
  /// compile-time-excluded categories vanish entirely at the call site.
  /// `span`/`parent` thread the causal chain (0 = none); call sites that
  /// don't participate simply omit them.
  template <TraceCat Cat>
  void record(TimeNs t, TraceEvent type, std::int16_t node, std::int32_t a,
              std::int32_t b, double v0 = 0.0, double v1 = 0.0,
              std::uint32_t span = 0, std::uint32_t parent = 0) {
    if constexpr ((kTraceCompiledMask & trace_bit(Cat)) == 0u) {
      (void)t; (void)type; (void)node; (void)a; (void)b; (void)v0; (void)v1;
      (void)span; (void)parent;
      return;
    } else {
      if ((mask_ & trace_bit(Cat)) == 0u) return;
      push(TraceRecord{t, static_cast<std::uint16_t>(type), node, a, b, span,
                       parent, 0, v0, v1});
    }
  }

  /// Allocates a fresh causal span id (never 0). Ids are handed out in
  /// call order, so they are deterministic per (seed, filter) — callers
  /// must gate allocation on enabled<Cat>() exactly like record().
  std::uint32_t new_span() { return ++next_span_; }

  /// Records seen (post-filter) over the sink's lifetime.
  std::uint64_t recorded() const { return recorded_; }

  /// In-memory mode: the accumulated records. Streaming mode: the unflushed
  /// tail only (use the file).
  const std::vector<TraceRecord>& records() const { return buf_; }

 private:
  void push(const TraceRecord& r);
  void flush();

  std::vector<TraceRecord> buf_;
  std::size_t capacity_;
  std::uint32_t mask_ = kTraceAllCategories;
  std::uint64_t recorded_ = 0;
  std::uint32_t next_span_ = 0;
  std::FILE* file_ = nullptr;
  Format format_ = Format::kBinary;
  std::size_t ring_capacity_ = 0;  ///< 0 = not in ring mode.
  std::size_t ring_next_ = 0;      ///< Slot the next ring record overwrites.
  std::uint64_t written_ = 0;      ///< Records flushed to the file so far.
};

/// Renders one record as a single JSON line (no trailing newline).
std::string trace_record_jsonl(const TraceRecord& r);

/// Writes the binary-format header to an open file with an "unknown count"
/// sentinel (TraceSink::close patches the real count in). Exposed for tests.
void write_trace_header(std::FILE* f);

/// Writes `records` as a complete trace file (header with the exact record
/// count, then the records) — the flight-recorder dump path. Returns false
/// and fills *error if the file cannot be created.
bool write_trace_file(const std::vector<TraceRecord>& records,
                      const std::string& path, TraceSink::Format format,
                      std::string* error);

/// Reads a binary trace file. Returns false and fills *error on a missing
/// file, a bad/unknown header, a record-count mismatch, an unknown event
/// type, or a truncated record tail; record-level errors name the 1-based
/// record number and byte offset.
bool read_trace(const std::string& path, std::vector<TraceRecord>* out,
                std::string* error);

}  // namespace e2efa
