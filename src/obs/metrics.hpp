// Metrics registry + periodic time-series sampling.
//
// Components keep their counters exactly as before — plain struct fields
// incremented on the hot path — and *register* pointers to them here, so the
// registry can be queried at sample time without adding any per-event cost.
// Gauges (queue depth, virtual clock) register a closure instead.
//
// The runner owns one registry per run (only when metrics are enabled) and
// samples it on a fixed period into a MetricsTimeSeries: windowed per-flow
// goodput, a share-normalized Jain fairness index, queue-depth percentiles,
// the MAC retry rate, and channel airtime utilization. Sampling happens at
// deterministic simulation times from in-simulation state only, so the
// series is identical across reruns and BatchRunner thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace e2efa {

enum class MetricKind { kCounter, kGauge };

/// One registered metric. Counters point at live `uint64/int64` fields;
/// gauges evaluate a closure. `node`/`subflow` are -1 when not applicable.
struct MetricEntry {
  std::string name;
  std::int16_t node = -1;
  std::int32_t subflow = -1;
  MetricKind kind = MetricKind::kCounter;
  const std::uint64_t* u64 = nullptr;
  const std::int64_t* i64 = nullptr;
  std::function<double()> gauge;

  double value() const;
};

class MetricsRegistry {
 public:
  void add_counter(std::string name, std::int16_t node, std::int32_t subflow,
                   const std::uint64_t* p);
  void add_counter(std::string name, std::int16_t node, std::int32_t subflow,
                   const std::int64_t* p);
  void add_gauge(std::string name, std::int16_t node, std::int32_t subflow,
                 std::function<double()> fn);

  const std::vector<MetricEntry>& entries() const { return entries_; }

  /// Current value of the (name, node, subflow) metric; null when absent.
  const MetricEntry* find(const std::string& name, std::int16_t node = -1,
                          std::int32_t subflow = -1) const;
  /// Sum of every entry with this name (e.g. total MAC timeouts).
  double sum(const std::string& name) const;
  /// All current values with this name, in registration order (node order —
  /// registration happens in node-id order in the runner).
  std::vector<double> values(const std::string& name) const;

 private:
  std::vector<MetricEntry> entries_;
};

/// One periodic sample. All values are window deltas or instantaneous
/// gauges, never cumulative, so each row is meaningful on its own.
struct MetricsSample {
  double t_s = 0.0;                      ///< Window end time, seconds.
  std::vector<double> flow_goodput_pps;  ///< Per logical flow, this window.
  double jain = 1.0;  ///< Jain over share-normalized windowed rates.
  double queue_depth_p50 = 0.0;
  double queue_depth_p95 = 0.0;
  double queue_depth_max = 0.0;
  double mac_retry_rate = 0.0;        ///< timeouts / DATA attempts, window.
  /// Σ frame airtime / window length. Sums over *all* transmissions, so
  /// spatial reuse (concurrent cliques) pushes it above 1.
  double channel_utilization = 0.0;
  /// In-band control plane (2PA-Dctrl only; 0 for every other protocol):
  /// control wire bytes queued by the AllocAgents this window, and the
  /// cumulative control-bytes / data-bytes overhead ratio at window end.
  double ctrl_bytes = 0.0;
  double ctrl_overhead = 0.0;
  /// Loss-hardened control-plane health, this window (0 when hardening is
  /// off): timer-driven CONSTRAINT/RATE/ADMIT retransmissions and receiver
  /// sequence gaps (messages the origin sent that this window never saw).
  double ctrl_retransmits = 0.0;
  double ctrl_seq_gaps = 0.0;
  /// Elastic transport gauges, one entry per logical flow at window end
  /// (empty for open-loop CBR runs, which keeps their JSONL byte-stable):
  /// congestion window (packets), smoothed RTT (seconds; 0 before the first
  /// sample), and the latest per-ACK delivery-rate sample (packets/s).
  std::vector<double> flow_cwnd;
  std::vector<double> flow_srtt_s;
  std::vector<double> flow_delivery_pps;

  bool operator==(const MetricsSample&) const = default;
};

struct MetricsTimeSeries {
  double period_s = 0.0;
  /// Per-epoch re-convergence times, seconds (in-band protocol, multi-epoch
  /// runs only; -1 marks an epoch that never converged). Copied from
  /// RunResult::reconv_s so the JSONL artifact is self-contained.
  std::vector<double> reconv_s;
  std::vector<MetricsSample> samples;

  bool operator==(const MetricsTimeSeries&) const = default;
};

/// One sample as a single JSON line (no trailing newline). %.17g doubles:
/// byte-deterministic for identical inputs.
std::string metrics_sample_jsonl(const MetricsSample& s);

/// Writes the series as JSONL (one header line, one line per sample).
/// Returns false and fills *error if the file cannot be created.
bool write_metrics_jsonl(const MetricsTimeSeries& ts, const std::string& path,
                         std::string* error);

}  // namespace e2efa
