#include "obs/trace.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {

namespace {

// "E2FA" + version + record size: readers reject anything they don't
// understand instead of misparsing it. Version 2 widened records to 48
// bytes (span/parent ids) and repurposed the reserved word as the record
// count, patched in at close so readers can detect truncation exactly.
constexpr std::uint32_t kTraceMagic = 0x45324641u;
constexpr std::uint32_t kTraceVersion = 2;
// Streams that die before close() leave the sentinel; readers then fall
// back to "count unknown" and only check for a partial trailing record.
constexpr std::uint32_t kTraceCountUnknown = 0xffffffffu;

struct TraceHeader {
  std::uint32_t magic = kTraceMagic;
  std::uint32_t version = kTraceVersion;
  std::uint32_t record_size = sizeof(TraceRecord);
  std::uint32_t record_count = kTraceCountUnknown;
};
static_assert(sizeof(TraceHeader) == 16);
constexpr long kTraceCountOffset = 12;  ///< Byte offset of record_count.

}  // namespace

const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kRunMeta: return "run_meta";
    case TraceEvent::kSubflowMeta: return "subflow_meta";
    case TraceEvent::kFrameTx: return "frame_tx";
    case TraceEvent::kFrameRx: return "frame_rx";
    case TraceEvent::kFrameCollision: return "frame_collision";
    case TraceEvent::kFrameFaulted: return "frame_faulted";
    case TraceEvent::kMacRetry: return "mac_retry";
    case TraceEvent::kMacDrop: return "mac_drop";
    case TraceEvent::kBackoffDraw: return "backoff_draw";
    case TraceEvent::kTagStart: return "tag_start";
    case TraceEvent::kTagInternalFinish: return "tag_internal_finish";
    case TraceEvent::kTagExternalFinish: return "tag_external_finish";
    case TraceEvent::kVClockUpdate: return "vclock_update";
    case TraceEvent::kQueueEnqueue: return "queue_enqueue";
    case TraceEvent::kQueueDrop: return "queue_drop";
    case TraceEvent::kFaultEpoch: return "fault_epoch";
    case TraceEvent::kLpResolve: return "lp_resolve";
    case TraceEvent::kFlowTarget: return "flow_target";
    case TraceEvent::kDelivery: return "delivery";
    case TraceEvent::kCtrlSend: return "ctrl_send";
    case TraceEvent::kCtrlRecv: return "ctrl_recv";
    case TraceEvent::kCtrlSolve: return "ctrl_solve";
    case TraceEvent::kCtrlRate: return "ctrl_rate";
    case TraceEvent::kCtrlAdmit: return "ctrl_admit";
    case TraceEvent::kCtrlRetransmit: return "ctrl_retransmit";
    case TraceEvent::kCtrlSeqGap: return "ctrl_seq_gap";
    case TraceEvent::kCtrlReconv: return "ctrl_reconv";
    case TraceEvent::kTransSend: return "trans_send";
    case TraceEvent::kTransAckTx: return "trans_ack_tx";
    case TraceEvent::kTransAckRx: return "trans_ack_rx";
    case TraceEvent::kTransRetransmit: return "trans_retransmit";
    case TraceEvent::kTransTimeout: return "trans_timeout";
    case TraceEvent::kTransCwnd: return "trans_cwnd";
  }
  return "unknown";
}

const char* to_string(TraceCat c) {
  switch (c) {
    case TraceCat::kMeta: return "meta";
    case TraceCat::kPhy: return "phy";
    case TraceCat::kMac: return "mac";
    case TraceCat::kBackoff: return "backoff";
    case TraceCat::kTag: return "tag";
    case TraceCat::kVClock: return "vclock";
    case TraceCat::kQueue: return "queue";
    case TraceCat::kFault: return "fault";
    case TraceCat::kLp: return "lp";
    case TraceCat::kFlow: return "flow";
    case TraceCat::kCtrl: return "ctrl";
    case TraceCat::kTransport: return "transport";
  }
  return "unknown";
}

bool parse_trace_filter(const std::string& spec, std::uint32_t* mask,
                        std::string* error) {
  E2EFA_ASSERT(mask != nullptr && error != nullptr);
  std::uint32_t m = trace_bit(TraceCat::kMeta);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(pos, comma - pos);
    pos = comma + 1;
    while (!name.empty() && (name.front() == ' ' || name.front() == '\t'))
      name.erase(name.begin());
    while (!name.empty() && (name.back() == ' ' || name.back() == '\t'))
      name.pop_back();
    if (name.empty()) continue;
    if (name == "all") {
      m = kTraceAllCategories;
      continue;
    }
    bool found = false;
    for (std::uint32_t bit = 0; bit < kTraceCategoryCount; ++bit) {
      const TraceCat c = static_cast<TraceCat>(bit);
      if (name == to_string(c)) {
        m |= trace_bit(c);
        found = true;
        break;
      }
    }
    if (!found) {
      *error = "unknown trace category: " + name +
               " (expected meta|phy|mac|backoff|tag|vclock|queue|fault|lp|flow|"
               "ctrl|transport|all)";
      return false;
    }
  }
  *mask = m;
  return true;
}

TraceSink::TraceSink(std::size_t buffer_records)
    : capacity_(buffer_records == 0 ? 1 : buffer_records) {
  buf_.reserve(capacity_);
}

TraceSink::~TraceSink() { close(); }

bool TraceSink::open(const std::string& path, Format format, std::string* error) {
  E2EFA_ASSERT(error != nullptr);
  E2EFA_ASSERT_MSG(file_ == nullptr, "trace sink already streaming");
  E2EFA_ASSERT_MSG(ring_capacity_ == 0, "trace sink is a flight-recorder ring");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open trace file: " + path;
    return false;
  }
  file_ = f;
  format_ = format;
  written_ = 0;
  if (format_ == Format::kBinary) write_trace_header(file_);
  return true;
}

void TraceSink::close() {
  if (file_ == nullptr) return;
  flush();
  if (format_ == Format::kBinary && written_ < kTraceCountUnknown &&
      std::fseek(file_, kTraceCountOffset, SEEK_SET) == 0) {
    const std::uint32_t count = static_cast<std::uint32_t>(written_);
    std::fwrite(&count, sizeof(count), 1, file_);
  }
  std::fclose(file_);
  file_ = nullptr;
}

void TraceSink::set_ring(std::size_t capacity) {
  E2EFA_ASSERT_MSG(file_ == nullptr, "trace sink already streaming");
  E2EFA_ASSERT_MSG(capacity > 0, "flight-recorder ring needs a capacity");
  ring_capacity_ = capacity;
  ring_next_ = 0;
  buf_.clear();
  buf_.reserve(capacity);
}

std::vector<TraceRecord> TraceSink::recent_records() const {
  if (ring_capacity_ == 0 || buf_.size() < ring_capacity_)
    return buf_;  // Not wrapped yet (or not a ring): already chronological.
  std::vector<TraceRecord> out;
  out.reserve(buf_.size());
  out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
             buf_.end());
  out.insert(out.end(), buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  return out;
}

void TraceSink::push(const TraceRecord& r) {
  ++recorded_;
  if (ring_capacity_ != 0) {
    if (buf_.size() < ring_capacity_) {
      buf_.push_back(r);
    } else {
      buf_[ring_next_] = r;
      ring_next_ = (ring_next_ + 1) % ring_capacity_;
    }
    return;
  }
  buf_.push_back(r);
  if (file_ != nullptr && buf_.size() >= capacity_) flush();
}

void TraceSink::flush() {
  if (file_ == nullptr || buf_.empty()) return;
  if (format_ == Format::kBinary) {
    std::fwrite(buf_.data(), sizeof(TraceRecord), buf_.size(), file_);
  } else {
    for (const TraceRecord& r : buf_) {
      const std::string line = trace_record_jsonl(r);
      std::fwrite(line.data(), 1, line.size(), file_);
      std::fputc('\n', file_);
    }
  }
  written_ += buf_.size();
  buf_.clear();
}

std::string trace_record_jsonl(const TraceRecord& r) {
  // %.17g round-trips doubles exactly, keeping JSONL output as deterministic
  // as the binary format.
  return strformat(
      "{\"t_ns\":%lld,\"ev\":\"%s\",\"node\":%d,\"a\":%d,\"b\":%d,"
      "\"span\":%u,\"parent\":%u,\"v0\":%.17g,\"v1\":%.17g}",
      static_cast<long long>(r.t), to_string(r.event()), static_cast<int>(r.node),
      static_cast<int>(r.a), static_cast<int>(r.b),
      static_cast<unsigned>(r.span), static_cast<unsigned>(r.parent), r.v0, r.v1);
}

void write_trace_header(std::FILE* f) {
  const TraceHeader h;
  std::fwrite(&h, sizeof(h), 1, f);
}

bool write_trace_file(const std::vector<TraceRecord>& records,
                      const std::string& path, TraceSink::Format format,
                      std::string* error) {
  E2EFA_ASSERT(error != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open trace file: " + path;
    return false;
  }
  if (format == TraceSink::Format::kBinary) {
    TraceHeader h;
    h.record_count = records.size() < kTraceCountUnknown
                         ? static_cast<std::uint32_t>(records.size())
                         : kTraceCountUnknown;
    std::fwrite(&h, sizeof(h), 1, f);
    if (!records.empty())
      std::fwrite(records.data(), sizeof(TraceRecord), records.size(), f);
  } else {
    for (const TraceRecord& r : records) {
      const std::string line = trace_record_jsonl(r);
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
  }
  std::fclose(f);
  return true;
}

bool read_trace(const std::string& path, std::vector<TraceRecord>* out,
                std::string* error) {
  E2EFA_ASSERT(out != nullptr && error != nullptr);
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open trace file: " + path;
    return false;
  }
  TraceHeader h;
  if (std::fread(&h, sizeof(h), 1, f) != 1 || h.magic != kTraceMagic) {
    *error = "not a trace file (bad header): " + path;
    std::fclose(f);
    return false;
  }
  if (h.version != kTraceVersion || h.record_size != sizeof(TraceRecord)) {
    *error = strformat(
        "unsupported trace format in %s: version %u record_size %u "
        "(this build reads version %u record_size %zu)",
        path.c_str(), static_cast<unsigned>(h.version),
        static_cast<unsigned>(h.record_size),
        static_cast<unsigned>(kTraceVersion), sizeof(TraceRecord));
    std::fclose(f);
    return false;
  }
  TraceRecord r;
  std::size_t got;
  while ((got = std::fread(&r, 1, sizeof(r), f)) == sizeof(r)) {
    if (r.type >= kTraceEventCount) {
      *error = strformat(
          "corrupt trace record %zu (byte offset %zu) in %s: unknown event "
          "type %u",
          out->size() + 1,
          sizeof(TraceHeader) + out->size() * sizeof(TraceRecord), path.c_str(),
          static_cast<unsigned>(r.type));
      std::fclose(f);
      return false;
    }
    out->push_back(r);
  }
  std::fclose(f);
  if (got != 0) {
    *error = strformat(
        "truncated trace record %zu (byte offset %zu) in %s: got %zu of %zu "
        "bytes",
        out->size() + 1,
        sizeof(TraceHeader) + out->size() * sizeof(TraceRecord), path.c_str(),
        got, sizeof(TraceRecord));
    return false;
  }
  if (h.record_count != kTraceCountUnknown && out->size() != h.record_count) {
    *error = strformat(
        "trace file %s is incomplete: header promises %u records, found %zu",
        path.c_str(), static_cast<unsigned>(h.record_count), out->size());
    return false;
  }
  return true;
}

}  // namespace e2efa
