// Offline analysis over a recorded trace: windowed per-flow rates, Jain
// fairness trajectories, and per-epoch convergence times.
//
// Everything here is computed purely from trace records (kRunMeta for the
// channel parameters, kLpResolve/kFlowTarget for the Phase-1 targets per
// epoch, kDelivery for end-to-end completions), so trace_tool can reproduce
// the runner's fairness metrics from a file alone.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace e2efa {

struct ConvergenceReport {
  double window_s = 0.0;
  int flow_count = 0;
  double channel_bps = 0.0;
  double payload_bytes = 0.0;

  /// Window end times; window w covers [w*window_s, (w+1)*window_s).
  std::vector<double> window_end_s;
  /// Measured end-to-end share of B per window per flow (bits delivered in
  /// the window divided by window_s * channel_bps).
  std::vector<std::vector<double>> window_share;
  /// Jain's index per window over share-normalized rates (flows with a zero
  /// target — suspended or inactive — are excluded from that window).
  std::vector<double> jain;

  /// One entry per LP (re-)solve, in time order.
  struct Epoch {
    int index = 0;
    double start_s = 0.0;
    int lp_status = 0;
    std::vector<double> target_share;  ///< Per logical flow, units of B.
  };
  std::vector<Epoch> epochs;

  /// Convergence of each epoch: the end time of the first window fully
  /// inside the epoch where every flow's *normalized* rate (measured share
  /// over target share) is within eps (relative) of the cross-flow mean
  /// normalized rate — i.e. the allocation's proportions match the Phase-1
  /// targets. (Absolute shares sit well below the nominal targets because
  /// of RTS/CTS + header overhead, which scales all flows down uniformly.)
  /// `converged == false` means no such window.
  struct EpochConvergence {
    int epoch = 0;
    double epoch_start_s = 0.0;
    double converged_s = 0.0;
    double time_to_converge_s = 0.0;
    bool converged = false;
  };
  std::vector<EpochConvergence> convergence;

  /// Steady-state Jain estimate for an epoch: the mean over the last half
  /// of the windows fully inside it (0 when the epoch has no windows).
  double steady_jain(int epoch) const;
  /// Windows (indices into `jain`) fully inside the given epoch.
  std::vector<std::size_t> epoch_windows(int epoch) const;
};

/// Builds the report from trace records. Requires a kRunMeta record; the
/// Lp category must have been recorded for targets/convergence (without it
/// the report still carries raw windowed shares and an unnormalized Jain).
/// `eps` is the relative tolerance for "within epsilon of r-hat".
ConvergenceReport analyze_convergence(const std::vector<TraceRecord>& records,
                                      double window_s, double eps);

/// Human-readable per-flow timeline rows for trace_tool (delivery counts and
/// milestone records for one flow, or all flows when flow < 0).
std::string format_flow_timeline(const std::vector<TraceRecord>& records,
                                 int flow, std::size_t limit);

/// Per-event-type counts, as "name count" lines sorted by event id, plus a
/// control-plane health section (retransmits by message kind, sequence
/// gaps, per-epoch re-convergence samples) when ctrl records are present.
std::string format_trace_summary(const std::vector<TraceRecord>& records);

/// CtrlMsg::Kind value -> report name ("HELLO", "CONSTRAINT", ...); kept in
/// sync with ctrl/messages.hpp by test (analysis never links the ctrl code).
const char* ctrl_kind_name(int kind);

/// Causal span graph rebuilt from (span, parent) ids alone. A record that
/// carries a nonzero `span` *owns* that span; any record whose `parent`
/// names a span (whether or not it owns one itself) is that span's child.
/// Spans are allocated in emission order, so a parent always precedes its
/// children and the graph is acyclic by construction.
struct SpanGraph {
  /// span id -> index (into the source records) of the record owning it.
  std::map<std::uint32_t, std::size_t> owner;
  /// span id -> indices of records caused by it, in time order.
  std::map<std::uint32_t, std::vector<std::size_t>> children;
  /// Indices of root records: they own a span whose parent is 0 or unknown
  /// (e.g. filtered out), in time order.
  std::vector<std::size_t> roots;
};
SpanGraph build_span_graph(const std::vector<TraceRecord>& records);

/// Causal-chain report (`trace-tool follow`): every root-to-leaf causal
/// tree that touches logical flow `flow` (all chains when flow < 0),
/// rendered as an indented tree with one described record per line.
/// `limit` caps the number of chains printed (0 = no cap).
std::string format_follow(const std::vector<TraceRecord>& records, int flow,
                          std::size_t limit);

/// Chrome-trace / Perfetto JSON export (`trace-tool chrome`): one track per
/// node (plus a run-global track), frame transmissions as duration slices,
/// everything else as instants, and causal span edges as flow arrows.
std::string format_chrome_trace(const std::vector<TraceRecord>& records);

}  // namespace e2efa
