// Offline analysis over a recorded trace: windowed per-flow rates, Jain
// fairness trajectories, and per-epoch convergence times.
//
// Everything here is computed purely from trace records (kRunMeta for the
// channel parameters, kLpResolve/kFlowTarget for the Phase-1 targets per
// epoch, kDelivery for end-to-end completions), so trace_tool can reproduce
// the runner's fairness metrics from a file alone.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace e2efa {

struct ConvergenceReport {
  double window_s = 0.0;
  int flow_count = 0;
  double channel_bps = 0.0;
  double payload_bytes = 0.0;

  /// Window end times; window w covers [w*window_s, (w+1)*window_s).
  std::vector<double> window_end_s;
  /// Measured end-to-end share of B per window per flow (bits delivered in
  /// the window divided by window_s * channel_bps).
  std::vector<std::vector<double>> window_share;
  /// Jain's index per window over share-normalized rates (flows with a zero
  /// target — suspended or inactive — are excluded from that window).
  std::vector<double> jain;

  /// One entry per LP (re-)solve, in time order.
  struct Epoch {
    int index = 0;
    double start_s = 0.0;
    int lp_status = 0;
    std::vector<double> target_share;  ///< Per logical flow, units of B.
  };
  std::vector<Epoch> epochs;

  /// Convergence of each epoch: the end time of the first window fully
  /// inside the epoch where every flow's *normalized* rate (measured share
  /// over target share) is within eps (relative) of the cross-flow mean
  /// normalized rate — i.e. the allocation's proportions match the Phase-1
  /// targets. (Absolute shares sit well below the nominal targets because
  /// of RTS/CTS + header overhead, which scales all flows down uniformly.)
  /// `converged == false` means no such window.
  struct EpochConvergence {
    int epoch = 0;
    double epoch_start_s = 0.0;
    double converged_s = 0.0;
    double time_to_converge_s = 0.0;
    bool converged = false;
  };
  std::vector<EpochConvergence> convergence;

  /// Steady-state Jain estimate for an epoch: the mean over the last half
  /// of the windows fully inside it (0 when the epoch has no windows).
  double steady_jain(int epoch) const;
  /// Windows (indices into `jain`) fully inside the given epoch.
  std::vector<std::size_t> epoch_windows(int epoch) const;
};

/// Builds the report from trace records. Requires a kRunMeta record; the
/// Lp category must have been recorded for targets/convergence (without it
/// the report still carries raw windowed shares and an unnormalized Jain).
/// `eps` is the relative tolerance for "within epsilon of r-hat".
ConvergenceReport analyze_convergence(const std::vector<TraceRecord>& records,
                                      double window_s, double eps);

/// Human-readable per-flow timeline rows for trace_tool (delivery counts and
/// milestone records for one flow, or all flows when flow < 0).
std::string format_flow_timeline(const std::vector<TraceRecord>& records,
                                 int flow, std::size_t limit);

/// Per-event-type counts, as "name count" lines sorted by event id.
std::string format_trace_summary(const std::vector<TraceRecord>& records);

}  // namespace e2efa
