// Fluid-model oracle: the "ideal case" evaluator of Sec. III, made concrete.
//
// Given a phase-1 allocation, predict steady-state per-subflow throughput,
// end-to-end throughput, and relay losses WITHOUT running the packet
// simulator: every subflow is served deterministically at
//     rate_s = share_s × effective_capacity(MAC, payload)
// where the effective capacity accounts for the full per-packet channel
// cost (RTS/CTS/DATA/ACK or DATA/ACK, SIFS/DIFS, mean backoff). Sources
// feed CBR; each hop forwards min(arrival, service); the first bottleneck
// hop caps everything downstream. This provides the ideal-case reference
// for the benches and a sanity anchor for the packet simulator: measured
// 2PA throughput lands near the prediction on lightly-loaded cliques
// (within ~5%) and at ~65-80% of it on fully saturated cliques (where
// collisions and tag throttling, which the fluid model ignores, bite),
// while the *ratios* between flows track the prediction closely.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.hpp"
#include "mac/dcf_mac.hpp"

namespace e2efa {

/// Mean channel time consumed by one successfully delivered data packet,
/// including the handshake, interframe spaces, and the mean initial
/// backoff (collisions and retries are not modeled — this is the ideal
/// case).
TimeNs per_packet_airtime(int payload_bytes, const MacConfig& mac, std::int64_t bps,
                          int cw_min);

/// Packets per second one unit of share (B) sustains under the MAC model.
double effective_packet_rate(int payload_bytes, const MacConfig& mac,
                             std::int64_t bps, int cw_min);

struct FluidPrediction {
  /// Served packet rate per subflow (pkt/s) — min(upstream arrival, own
  /// service capacity).
  std::vector<double> subflow_rate;
  /// End-to-end packet rate per flow (pkt/s).
  std::vector<double> flow_rate;
  double total_flow_rate = 0.0;
  /// Steady-state in-network loss rate (pkt/s): Σ (first-hop − last-hop).
  double loss_rate = 0.0;
};

/// Steady-state fluid prediction for `alloc` with CBR sources at
/// `source_pps` and the given MAC parameters.
FluidPrediction fluid_predict(const FlowSet& flows, const Allocation& alloc,
                              double source_pps, int payload_bytes,
                              const MacConfig& mac, std::int64_t bps, int cw_min);

}  // namespace e2efa
