// Parallel multi-run driver: fans independent `run_scenario` calls across a
// pool of std::threads.
//
// Each job is completely self-contained — run_scenario builds its own
// Simulator, Channel, MACs and RNGs — so the only shared mutable state in
// the whole pipeline is the packet-uid counter, which is atomic and feeds
// tracing only. Results are stored by job index, so the output order (and
// every value in it) is identical to a sequential loop regardless of the
// thread count or completion order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {

/// Per-seed metrics file name: inserts ".seed<N>" before the extension
/// ("out/m.jsonl", 7 → "out/m.seed7.jsonl"); extensionless paths get the
/// tag appended.
std::string metrics_seed_path(const std::string& path, std::uint64_t seed);

class BatchRunner {
 public:
  struct Job {
    const Scenario* scenario = nullptr;
    Protocol protocol = Protocol::k80211;
    SimConfig config;
  };

  /// jobs <= 0 selects std::thread::hardware_concurrency(); jobs == 1 runs
  /// inline on the calling thread (no pool).
  explicit BatchRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  /// Runs every job; results[i] belongs to jobs[i]. Exceptions thrown by a
  /// job (e.g. contract violations) are rethrown on the calling thread.
  std::vector<RunResult> run(const std::vector<Job>& jobs) const;

  /// One run of (sc, proto) per seed, with `base` supplying everything else.
  std::vector<RunResult> run_seeds(const Scenario& sc, Protocol proto,
                                   const SimConfig& base,
                                   const std::vector<std::uint64_t>& seeds) const;

  /// One run of `sc` per protocol under a common config.
  std::vector<RunResult> run_protocols(const Scenario& sc,
                                       const std::vector<Protocol>& protos,
                                       const SimConfig& cfg) const;

  /// run_seeds + one metrics JSONL file per seed, written to
  /// metrics_seed_path(metrics_out, seed). `base.metrics_period_seconds`
  /// must be > 0 (it is what fills RunResult::metrics). Files are written
  /// sequentially on the calling thread after every run completes, so their
  /// contents are independent of the thread count. Returns false and fills
  /// *error on the first file that cannot be written (earlier files stay).
  bool run_seeds_with_metrics(const Scenario& sc, Protocol proto,
                              const SimConfig& base,
                              const std::vector<std::uint64_t>& seeds,
                              const std::string& metrics_out,
                              std::vector<RunResult>* results,
                              std::string* error) const;

 private:
  int jobs_;
};

}  // namespace e2efa
