#include "net/node_stack.hpp"

#include <limits>

#include "check/check.hpp"
#include "util/assert.hpp"

namespace e2efa {

NodeStack::NodeStack(Simulator& sim, Channel& channel, NodeId self, const FlowSet& flows,
                     TrafficStats& stats, const MacConfig& mac_cfg,
                     std::unique_ptr<TxQueue> queue, std::unique_ptr<BackoffPolicy> backoff,
                     Rng mac_rng, TagAgent* tags)
    : sim_(sim),
      self_(self),
      flows_(flows),
      stats_(stats),
      queue_(std::move(queue)),
      backoff_(std::move(backoff)) {
  E2EFA_ASSERT(queue_ != nullptr && backoff_ != nullptr);
  mac_ = std::make_unique<DcfMac>(sim, channel, self, mac_cfg, *queue_, *backoff_, *this,
                                  mac_rng, tags);
}

void NodeStack::enqueue_and_notify(Packet p) {
  SubflowCounters& c = stats_.subflow(p.subflow);
  const bool measuring = stats_.measuring(sim_.now());
  const std::int32_t subflow = p.subflow;
  // backlog() walks the scheduler lanes — gate on the category, not just
  // the sink, so a filtered trace costs nothing here.
  if (check_ != nullptr) check_->on_offered(subflow);
  if (queue_->enqueue(p, sim_.now())) {
    if (measuring) ++c.enqueued;
    if (check_ != nullptr) check_->on_accepted(subflow);
    if (trace_ != nullptr && trace_->enabled<TraceCat::kQueue>())
      trace_->record<TraceCat::kQueue>(sim_.now(), TraceEvent::kQueueEnqueue,
                                       static_cast<std::int16_t>(self_), subflow,
                                       queue_->backlog());
    mac_->notify_queue_nonempty();
  } else {
    if (measuring) ++c.dropped_queue;
    if (check_ != nullptr) check_->on_rejected(subflow);
    if (trace_ != nullptr && trace_->enabled<TraceCat::kQueue>())
      trace_->record<TraceCat::kQueue>(sim_.now(), TraceEvent::kQueueDrop,
                                       static_cast<std::int16_t>(self_), subflow,
                                       queue_->backlog());
  }
}

void NodeStack::inject_from_source(Packet p, FlowId flow) {
  const Flow& f = flows_.flow(flow);
  E2EFA_ASSERT_MSG(f.source() == self_, "source packet injected at wrong node");
  p.flow = flow;
  p.hop = 0;
  p.subflow = flows_.subflow_index(flow, 0);
  p.src = self_;
  p.dst = f.path[1];
  if (stats_.measuring(sim_.now())) ++stats_.subflow(p.subflow).generated;
  enqueue_and_notify(p);
}

void NodeStack::on_packet_delivered(const Packet& p) {
  E2EFA_ASSERT(p.dst == self_);
  // Sentinel is max(): real uids count up from 1, but unit harnesses may
  // hand-build packets with the default uid of 0.
  auto [it, inserted] = last_uid_.try_emplace(
      p.subflow, std::numeric_limits<std::uint64_t>::max());
  if (p.uid == it->second) return;  // duplicate (lost ACK, sender retried)
  it->second = p.uid;
  if (stats_.measuring(sim_.now())) ++stats_.subflow(p.subflow).delivered;
  if (check_ != nullptr) check_->on_delivered(p.subflow);

  const Flow& f = flows_.flow(p.flow);
  if (p.hop + 1 >= f.length()) {
    // The transport sink (ACK plane) decides whether this sequence is a
    // first arrival; a retransmitted copy is acked but not counted.
    const bool fresh =
        transport_sink_ == nullptr || transport_sink_(p, sim_.now());
    if (!fresh) return;
    if (stats_.measuring(sim_.now()))
      stats_.record_delay(p.flow, sim_.now() - p.created);
    stats_.notify_end_to_end(p.flow, sim_.now(), sim_.now() - p.created);
    return;  // reached the destination
  }
  Packet fwd = p;
  ++fwd.hop;
  fwd.subflow = flows_.subflow_index(fwd.flow, fwd.hop);
  fwd.src = self_;
  fwd.dst = f.path[static_cast<std::size_t>(fwd.hop) + 1];
  enqueue_and_notify(fwd);
}

void NodeStack::on_packet_sent(const Packet& p) {
  if (check_ != nullptr) check_->on_sent(p.subflow);
}

void NodeStack::on_packet_dropped(const Packet& p) {
  if (stats_.measuring(sim_.now())) ++stats_.subflow(p.subflow).dropped_mac;
  if (check_ != nullptr) check_->on_mac_dropped(p.subflow);
  if (on_link_failure_) on_link_failure_(p, sim_.now());
}

}  // namespace e2efa
