#include "net/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "geom/geom.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

// One node's random-waypoint walk, advanced in kMobilityStepS ticks. The
// generator is seeded from (spec seed, node id) so two specs sharing the
// default seed still walk distinct trajectories.
class Waypointer {
 public:
  Waypointer(const MobilitySpec& spec, Point home, Point lo, Point hi)
      : spec_(spec), pos_(home), lo_(lo), hi_(hi),
        rng_(spec.seed + 0x9e3779b97f4a7c15ULL *
                             static_cast<std::uint64_t>(spec.node + 1)) {
    pick_waypoint();
  }

  const Point& position() const { return pos_; }

  void advance(double dt) {
    while (dt > 0.0) {
      if (pause_left_ > 0.0) {
        double wait = std::min(dt, pause_left_);
        pause_left_ -= wait;
        dt -= wait;
        continue;
      }
      double dist = distance(pos_, target_);
      double reach = spec_.speed_mps * dt;
      if (reach < dist) {
        double f = reach / dist;
        pos_.x += (target_.x - pos_.x) * f;
        pos_.y += (target_.y - pos_.y) * f;
        return;
      }
      // Arrived with time to spare: dwell, then head for a fresh waypoint.
      dt -= spec_.speed_mps > 0.0 ? dist / spec_.speed_mps : 0.0;
      pos_ = target_;
      pause_left_ = spec_.pause_s;
      pick_waypoint();
    }
  }

 private:
  void pick_waypoint() {
    target_.x = rng_.uniform(lo_.x, std::nextafter(hi_.x, 1e300));
    target_.y = rng_.uniform(lo_.y, std::nextafter(hi_.y, 1e300));
  }

  MobilitySpec spec_;
  Point pos_;
  Point target_{};
  Point lo_, hi_;
  double pause_left_ = 0.0;
  Rng rng_;
};

}  // namespace

void validate_mobility(const std::vector<MobilitySpec>& specs,
                       const Topology& topo) {
  std::vector<bool> seen(static_cast<std::size_t>(topo.node_count()), false);
  for (const MobilitySpec& m : specs) {
    E2EFA_ASSERT_MSG(m.node >= 0 && m.node < topo.node_count(),
                     "mobility node " + std::to_string(m.node) +
                         " out of range for " +
                         std::to_string(topo.node_count()) + " nodes");
    E2EFA_ASSERT_MSG(!seen[static_cast<std::size_t>(m.node)],
                     "duplicate mobility spec for node " +
                         std::to_string(m.node));
    seen[static_cast<std::size_t>(m.node)] = true;
    E2EFA_ASSERT_MSG(m.speed_mps > 0.0, "mobility speed must be positive");
    E2EFA_ASSERT_MSG(m.pause_s >= 0.0, "mobility pause must be non-negative");
  }
}

void compile_mobility(const Topology& topo,
                      const std::vector<MobilitySpec>& specs, double horizon_s,
                      FaultPlan& plan) {
  validate_mobility(specs, topo);
  if (specs.empty() || horizon_s <= 0.0) return;

  // Arena: bounding box of the home layout (degenerate boxes are fine — the
  // walk simply stays on the line/point).
  Point lo = topo.position(0), hi = topo.position(0);
  for (NodeId n = 1; n < topo.node_count(); ++n) {
    const Point& p = topo.position(n);
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  // Walk specs in node order regardless of input order so the compiled
  // schedule is a pure function of the scenario.
  std::vector<MobilitySpec> ordered(specs);
  std::sort(ordered.begin(), ordered.end(),
            [](const MobilitySpec& a, const MobilitySpec& b) {
              return a.node < b.node;
            });

  std::vector<Waypointer> walkers;
  walkers.reserve(ordered.size());
  std::vector<int> walker_of(static_cast<std::size_t>(topo.node_count()), -1);
  for (const MobilitySpec& m : ordered) {
    walker_of[static_cast<std::size_t>(m.node)] =
        static_cast<int>(walkers.size());
    walkers.emplace_back(m, topo.position(m.node), lo, hi);
  }

  // Home links with at least one mobile endpoint, plus their current state.
  struct WatchedLink {
    NodeId a, b;
    bool up = true;
  };
  std::vector<WatchedLink> links;
  for (NodeId a = 0; a < topo.node_count(); ++a) {
    for (NodeId b = a + 1; b < topo.node_count(); ++b) {
      if (!topo.has_link(a, b)) continue;
      if (walker_of[static_cast<std::size_t>(a)] < 0 &&
          walker_of[static_cast<std::size_t>(b)] < 0) {
        continue;
      }
      links.push_back({a, b, true});
    }
  }
  if (links.empty()) return;

  auto current = [&](NodeId n) -> Point {
    int w = walker_of[static_cast<std::size_t>(n)];
    return w >= 0 ? walkers[static_cast<std::size_t>(w)].position()
                  : topo.position(n);
  };

  const double drop_at = topo.tx_range();
  const double rejoin_at = kRejoinFraction * topo.tx_range();
  const long steps = static_cast<long>(std::floor(horizon_s / kMobilityStepS));
  for (long k = 1; k <= steps; ++k) {
    for (Waypointer& w : walkers) w.advance(kMobilityStepS);
    const double t = static_cast<double>(k) * kMobilityStepS;
    for (WatchedLink& l : links) {
      const double d = distance(current(l.a), current(l.b));
      if (l.up && d > drop_at) {
        l.up = false;
        plan.link_down(l.a, l.b, t);
      } else if (!l.up && d <= rejoin_at) {
        l.up = true;
        plan.link_up(l.a, l.b, t);
      }
    }
  }
}

}  // namespace e2efa
