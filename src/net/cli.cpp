#include "net/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "ctrl/admission.hpp"
#include "net/scenario_file.hpp"
#include "obs/trace.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace e2efa {

std::optional<Protocol> parse_protocol(const std::string& s) {
  if (s == "802.11" || s == "80211" || s == "dcf") return Protocol::k80211;
  if (s == "two-tier" || s == "twotier") return Protocol::kTwoTier;
  if (s == "two-tier-mm" || s == "twotier-mm") return Protocol::kTwoTierBalanced;
  if (s == "2pa-c" || s == "2pa" || s == "2PA-C") return Protocol::k2paCentralized;
  if (s == "2pa-d" || s == "2PA-D") return Protocol::k2paDistributed;
  if (s == "2pa-dctrl" || s == "2PA-Dctrl") return Protocol::k2paDistributedCtrl;
  if (s == "maxmin" || s == "max-min") return Protocol::kMaxMin;
  return std::nullopt;
}

std::string cli_usage() {
  return
      "usage: e2efa_sim [options]\n"
      "  --scenario S    1 | 2 | chain:N | grid:RxC | random:N | file:PATH (default 1)\n"
      "  --protocol P    802.11 | two-tier | two-tier-mm | 2pa-c | 2pa-d |\n"
      "                  2pa-dctrl (phase 1 in-band over control frames) | maxmin\n"
      "  --seconds T     measured simulation horizon (default 60)\n"
      "  --warmup T      excluded transient seconds (default 0)\n"
      "  --pps N         CBR packets per second per flow (default 200)\n"
      "  --alpha A       2PA tag-backoff strictness (default 1e-4)\n"
      "  --seed N        RNG seed (default 1)\n"
      "  --queue N       per-queue capacity (default 50)\n"
      "  --loss P        default per-link packet-error rate in [0,1] (default 0)\n"
      "  --shares        also print phase-1 target shares\n"
      "  --check         arm every invariant oracle (src/check); violations\n"
      "                  are reported after the table and exit nonzero\n"
      "  --trace PATH    write a structured event trace (.jsonl suffix = text,\n"
      "                  anything else = compact binary for trace-tool)\n"
      "  --trace-filter C  comma-separated trace categories (meta, phy, mac,\n"
      "                  backoff, tag, vclock, queue, fault, lp, flow, ctrl,\n"
      "                  all); requires --trace; ctrl needs --protocol 2pa-dctrl\n"
      "  --metrics-out PATH  write periodic metrics samples as JSONL\n"
      "  --metrics-period T  metrics sampling period in seconds (default 1;\n"
      "                  requires --metrics-out)\n"
      "  --profile PATH  write self-profiler phase accounting as JSON\n"
      "                  (setup/clique/solve/sim/phy/ctrl wall seconds)\n"
      "  --flight-out PATH  with --check: dump the flight recorder (recent\n"
      "                  trace records, binary) when a violation trips\n"
      "  --churn R:L     open-loop flow churn: flow 0 founds the network,\n"
      "                  later flows arrive at mean rate R/s and live L s on\n"
      "                  average; arrivals pass the admission gate\n"
      "  --mobility K:S  K random-waypoint walkers moving at S m/s\n"
      "  --transport K   source model: cbr (open-loop, default) | aimd | bbr\n"
      "                  (closed-loop elastic sources over end-to-end ACKs)\n"
      "  --help          this text\n";
}

std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                    std::string* error) {
  E2EFA_ASSERT(error != nullptr);
  CliOptions opt;
  opt.config.sim_seconds = 60.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      error->clear();
      return std::nullopt;
    }
    if (arg == "--shares") {
      opt.list_shares = true;
      continue;
    }
    if (arg == "--check") {
      opt.check = true;
      continue;
    }
    const auto value = next();
    if (!value) {
      *error = "missing value for " + arg;
      return std::nullopt;
    }
    if (arg == "--scenario") {
      opt.scenario = *value;
    } else if (arg == "--protocol") {
      const auto p = parse_protocol(*value);
      if (!p) {
        *error = "unknown protocol: " + *value;
        return std::nullopt;
      }
      opt.protocol = *p;
    } else if (arg == "--seconds") {
      opt.config.sim_seconds = std::atof(value->c_str());
      if (opt.config.sim_seconds <= 0) {
        *error = "--seconds must be positive";
        return std::nullopt;
      }
    } else if (arg == "--warmup") {
      opt.config.warmup_seconds = std::atof(value->c_str());
      if (opt.config.warmup_seconds < 0) {
        *error = "--warmup must be non-negative";
        return std::nullopt;
      }
    } else if (arg == "--pps") {
      opt.config.cbr_pps = std::atof(value->c_str());
      if (opt.config.cbr_pps <= 0) {
        *error = "--pps must be positive";
        return std::nullopt;
      }
    } else if (arg == "--alpha") {
      opt.config.alpha = std::atof(value->c_str());
    } else if (arg == "--seed") {
      opt.config.seed = static_cast<std::uint64_t>(std::atoll(value->c_str()));
    } else if (arg == "--queue") {
      opt.config.queue_capacity = std::atoi(value->c_str());
      if (opt.config.queue_capacity < 1) {
        *error = "--queue must be >= 1";
        return std::nullopt;
      }
    } else if (arg == "--loss") {
      opt.default_loss = std::atof(value->c_str());
      if (opt.default_loss < 0.0 || opt.default_loss > 1.0) {
        *error = "--loss must be within [0, 1]";
        return std::nullopt;
      }
    } else if (arg == "--trace") {
      if (value->empty()) {
        *error = "--trace needs a path";
        return std::nullopt;
      }
      opt.trace_path = *value;
    } else if (arg == "--trace-filter") {
      std::uint32_t mask = 0;
      if (!parse_trace_filter(*value, &mask, error)) return std::nullopt;
      opt.trace_filter = *value;
    } else if (arg == "--metrics-out") {
      if (value->empty()) {
        *error = "--metrics-out needs a path";
        return std::nullopt;
      }
      opt.metrics_out = *value;
    } else if (arg == "--profile") {
      if (value->empty()) {
        *error = "--profile needs a path";
        return std::nullopt;
      }
      opt.profile_out = *value;
    } else if (arg == "--flight-out") {
      if (value->empty()) {
        *error = "--flight-out needs a path";
        return std::nullopt;
      }
      opt.flight_out = *value;
    } else if (arg == "--metrics-period") {
      opt.config.metrics_period_seconds = std::atof(value->c_str());
      if (opt.config.metrics_period_seconds <= 0) {
        *error = "--metrics-period must be positive";
        return std::nullopt;
      }
    } else if (arg == "--churn") {
      const auto colon = value->find(':');
      if (colon == std::string::npos) {
        *error = "--churn needs RATE:LIFE";
        return std::nullopt;
      }
      opt.churn_rate = std::atof(value->substr(0, colon).c_str());
      opt.churn_life = std::atof(value->substr(colon + 1).c_str());
      if (opt.churn_rate <= 0 || opt.churn_life <= 0) {
        *error = "--churn RATE and LIFE must both be positive";
        return std::nullopt;
      }
    } else if (arg == "--transport") {
      if (!parse_transport_kind(*value)) {
        *error = "unknown transport kind: " + *value + " (cbr | aimd | bbr)";
        return std::nullopt;
      }
      opt.transport = *value;
    } else if (arg == "--mobility") {
      const auto colon = value->find(':');
      if (colon == std::string::npos) {
        *error = "--mobility needs K:SPEED";
        return std::nullopt;
      }
      opt.mobility_walkers = std::atoi(value->substr(0, colon).c_str());
      opt.mobility_speed = std::atof(value->substr(colon + 1).c_str());
      if (opt.mobility_walkers < 1 || opt.mobility_speed <= 0) {
        *error = "--mobility needs K >= 1 walkers and a positive speed";
        return std::nullopt;
      }
    } else {
      *error = "unknown option: " + arg;
      return std::nullopt;
    }
  }
  if (!opt.trace_filter.empty() && opt.trace_path.empty()) {
    *error = "--trace-filter requires --trace";
    return std::nullopt;
  }
  // Naming the ctrl category without the in-band protocol would produce a
  // silently-empty trace/metrics stream — no agent ever emits; fail loudly.
  // (Token scan is exact: no other category name contains "ctrl".)
  if (!opt.trace_filter.empty() &&
      opt.trace_filter.find("ctrl") != std::string::npos &&
      opt.protocol != Protocol::k2paDistributedCtrl) {
    *error = std::string("--trace-filter names the ctrl category, but --protocol ") +
             to_string(opt.protocol) +
             " has no control plane (use --protocol 2pa-dctrl)";
    return std::nullopt;
  }
  if (opt.config.metrics_period_seconds > 0 && opt.metrics_out.empty()) {
    *error = "--metrics-period requires --metrics-out";
    return std::nullopt;
  }
  if (!opt.flight_out.empty() && !opt.check) {
    *error = "--flight-out requires --check (the dump triggers on a violation)";
    return std::nullopt;
  }
  if (!opt.metrics_out.empty() && opt.config.metrics_period_seconds <= 0)
    opt.config.metrics_period_seconds = 1.0;
  return opt;
}

namespace {
/// Splits "chain:5" into ("chain", "5"); tag empty when no colon.
std::pair<std::string, std::string> split_spec(const std::string& spec) {
  const auto pos = spec.find(':');
  if (pos == std::string::npos) return {spec, ""};
  return {spec.substr(0, pos), spec.substr(pos + 1)};
}
}  // namespace

void apply_cli_dynamics(Scenario& sc, const CliOptions& opt) {
  if (!opt.transport.empty()) {
    const auto kind = parse_transport_kind(opt.transport);
    E2EFA_ASSERT_MSG(kind.has_value(), "unparsed transport kind survived CLI");
    sc.transport = *kind;
  }
  if (opt.churn_rate > 0.0 && sc.flow_specs.size() > 1) {
    // A salted, dedicated stream: the run's own master RNG (same seed) must
    // see the exact draw sequence it would without churn.
    Rng rng(opt.config.seed ^ 0x636875726e5f31ULL);
    sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
    double t = 0.0;
    for (std::size_t f = 1; f < sc.activity.size(); ++f) {
      t += rng.exponential(1.0 / opt.churn_rate);
      sc.activity[f].start_s = t;
      sc.activity[f].stop_s = t + rng.exponential(opt.churn_life);
    }
  }
  if (opt.mobility_walkers > 0) {
    Rng rng(opt.config.seed ^ 0x6d6f625f31ULL);
    const int k = std::min(opt.mobility_walkers, sc.topo.node_count());
    std::vector<NodeId> moving;
    while (static_cast<int>(moving.size()) < k) {
      const NodeId v = static_cast<NodeId>(
          rng.uniform_u64(static_cast<std::uint64_t>(sc.topo.node_count())));
      if (std::find(moving.begin(), moving.end(), v) == moving.end())
        moving.push_back(v);
    }
    std::sort(moving.begin(), moving.end());
    for (NodeId v : moving) {
      MobilitySpec m;
      m.node = v;
      m.speed_mps = opt.mobility_speed;
      m.seed = rng.uniform_u64(1u << 20);
      sc.mobility.push_back(m);
    }
  }
}

Scenario make_named_scenario(const std::string& spec, Rng& rng) {
  const auto [kind, param] = split_spec(spec);
  if (kind == "1") return scenario1();
  if (kind == "2") return scenario2();
  if (kind == "file") {
    E2EFA_ASSERT_MSG(!param.empty(), "file spec needs a path: file:PATH");
    return load_scenario_file(param);
  }
  if (kind == "chain") {
    const int hops = std::atoi(param.c_str());
    E2EFA_ASSERT_MSG(hops >= 1 && hops <= 64, "chain:N needs 1 <= N <= 64");
    Scenario sc{spec, make_chain(hops + 1), {}, {}};
    sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, hops));
    return sc;
  }
  if (kind == "grid") {
    const auto x = param.find('x');
    E2EFA_ASSERT_MSG(x != std::string::npos, "grid spec needs RxC");
    const int rows = std::atoi(param.substr(0, x).c_str());
    const int cols = std::atoi(param.substr(x + 1).c_str());
    E2EFA_ASSERT_MSG(rows >= 2 && cols >= 2 && rows <= 16 && cols <= 16,
                     "grid:RxC needs 2..16 per side");
    Scenario sc{spec, make_grid(rows, cols), {}, {}};
    const NodeId n = static_cast<NodeId>(rows * cols);
    // Four corner-crossing flows.
    sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, n - 1));
    sc.flow_specs.push_back(make_routed_flow(sc.topo, cols - 1, n - cols));
    sc.flow_specs.push_back(make_routed_flow(sc.topo, n - 1, 0));
    sc.flow_specs.push_back(make_routed_flow(sc.topo, n - cols, cols - 1));
    return sc;
  }
  if (kind == "random") {
    const int nodes = std::atoi(param.c_str());
    E2EFA_ASSERT_MSG(nodes >= 4 && nodes <= 128, "random:N needs 4 <= N <= 128");
    const double side = 200.0 * std::sqrt(static_cast<double>(nodes));
    Scenario sc{spec, make_random(nodes, side, side, rng), {}, {}};
    const int nf = std::max(2, nodes / 3);
    for (int i = 0; i < nf; ++i) {
      NodeId a, b;
      do {
        a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
        b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
      } while (a == b);
      sc.flow_specs.push_back(make_routed_flow(sc.topo, a, b));
    }
    return sc;
  }
  throw ContractViolation("unknown scenario spec: " + spec);
}

std::string format_run_result(const Scenario& sc, const RunResult& r,
                              const SimConfig& cfg, bool list_shares) {
  std::ostringstream os;
  FlowSet flows(sc.topo, sc.flow_specs);
  os << sc.name << " | " << to_string(r.protocol) << " | T = " << cfg.sim_seconds
     << " s";
  if (cfg.warmup_seconds > 0) os << " (+" << cfg.warmup_seconds << " s warmup)";
  os << "\n\n";

  TextTable t({"flow", "route", "e2e pkts", "measured share", "target share",
               "mean delay ms"});
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    const Flow& fl = flows.flow(f);
    std::vector<std::string> hops;
    for (NodeId n : fl.path) hops.push_back(sc.topo.label(n));
    // End-to-end goodput share; aggregates every repair route the flow used
    // (identical to the last provisioned hop's share in fault-free runs).
    const double share =
        static_cast<double>(r.end_to_end_per_flow[f]) * 8.0 * cfg.payload_bytes /
        (cfg.sim_seconds * static_cast<double>(cfg.channel_bps));
    t.add_row({fl.name(), join(hops, "-"), std::to_string(r.end_to_end_per_flow[f]),
               strformat("%.3fB", share),
               r.has_target ? format_share_of_b(r.target_flow_share[f]) : "-",
               strformat("%.1f", r.mean_delay_s[f] * 1e3)});
  }
  t.print(os);
  os << "\ntotal end-to-end " << r.total_end_to_end << " pkts, lost "
     << r.lost_packets << " (ratio " << strformat("%.4f", r.loss_ratio) << "), "
     << r.channel.frames_transmitted << " frames on air, "
     << r.channel.frames_corrupted << " corrupted\n";

  if (r.protocol == Protocol::k2paDistributedCtrl) {
    os << "\nin-band control plane: " << r.ctrl.ctrl_frames << " ctrl frames ("
       << r.ctrl.ctrl_bytes << " wire bytes), queued " << r.ctrl.hello_sent
       << " HELLO / " << r.ctrl.constraint_sent << " CONSTRAINT / "
       << r.ctrl.rate_sent << " RATE, " << r.ctrl.msgs_received
       << " payloads decoded, " << r.ctrl.solves << " source LP solves\n";
    if (r.ctrl.retransmits + r.ctrl.seq_gaps + r.ctrl.stale_dropped +
            r.ctrl.forced_solves + r.ctrl.admit_req_sent >
        0) {
      os << "  hardened: " << r.ctrl.retransmits << " retransmits, "
         << r.ctrl.seq_gaps << " sequence gaps seen, " << r.ctrl.stale_dropped
         << " stale msgs dropped, " << r.ctrl.forced_solves
         << " forced (degraded) solves, " << r.ctrl.admit_req_sent
         << " ADMIT_REQ / " << r.ctrl.admit_rsp_sent << " ADMIT_RSP\n";
    }
    if (!r.reconv_s.empty()) {
      os << "  re-convergence per epoch (s):";
      for (double v : r.reconv_s)
        os << " " << (v < 0.0 ? std::string("never") : strformat("%.1f", v));
      os << "\n";
    }
  }

  if (sc.transport != TransportKind::kCbr) {
    os << "\nelastic transport (" << to_string(sc.transport) << "): "
       << r.transport.acks_sent << " acks sent, " << r.transport.acks_relayed
       << " relayed, " << r.transport.acks_delivered << " delivered\n";
    for (std::size_t f = 0; f < r.transport.flows.size(); ++f) {
      const TransportTelemetry& tel = r.transport.flows[f];
      os << "  " << flows.flow(static_cast<FlowId>(f)).name() << ": cwnd "
         << strformat("%.1f", tel.cwnd) << ", srtt "
         << strformat("%.1f", tel.srtt_s * 1e3) << " ms, "
         << tel.retransmits << " retransmits, " << tel.timeouts
         << " timeouts\n";
    }
  }

  if (!r.admissions.empty()) {
    std::size_t admitted = 0;
    for (const RunResult::Admission& a : r.admissions) admitted += a.admitted;
    os << "\nadmission control: " << admitted << "/" << r.admissions.size()
       << " arrivals admitted\n";
    for (const RunResult::Admission& a : r.admissions) {
      os << "  " << flows.flow(a.flow).name() << " at "
         << strformat("%.2f", a.at_s) << " s: "
         << (a.admitted ? "admitted" : "rejected");
      if (!a.admitted)
        os << " (" << to_string(static_cast<AdmissionReason>(a.reason)) << ")";
      os << ", worst clique load " << strformat("%.3f", a.worst_load);
      if (a.inband >= 0)
        os << ", in-band verdict: " << (a.inband == 1 ? "admit" : "reject");
      else if (r.protocol == Protocol::k2paDistributedCtrl)
        os << ", in-band round incomplete";
      os << "\n";
    }
  }

  if (!sc.faults.empty()) {
    os << "\nfaults: " << r.link_failures << " link-layer failures, "
       << r.channel.frames_faulted << " frames faulted ("
       << r.channel.faulted_dead << " dead node/link, " << r.channel.faulted_loss
       << " lossy channel), " << r.suspended_packets
       << " packets suppressed while suspended\n";
    for (const RunResult::Recovery& rec : r.recoveries) {
      os << "  " << flows.flow(rec.flow).name() << " disrupted at "
         << strformat("%.2f", rec.fault_s) << " s, healed at "
         << strformat("%.2f", rec.recovered_s) << " s (+"
         << strformat("%.2f", rec.recovered_s - rec.fault_s) << " s)\n";
    }
    if (!r.epoch_end_to_end.empty()) {
      os << "  per-epoch goodput (pkts):\n";
      for (std::size_t e = 0; e < r.epoch_end_to_end.size(); ++e) {
        os << "    epoch " << e << " @" << strformat("%.1f", r.epoch_starts_s[e])
           << " s:";
        for (FlowId f = 0; f < flows.flow_count(); ++f)
          os << " " << r.epoch_end_to_end[e][static_cast<std::size_t>(f)];
        os << "\n";
      }
    }
  }

  if (list_shares && r.has_target) {
    os << "\nphase-1 subflow shares:\n";
    for (int s = 0; s < flows.subflow_count(); ++s)
      os << "  " << flows.subflow(s).name() << " = "
         << format_share_of_b(r.target_subflow_share[static_cast<std::size_t>(s)])
         << "\n";
  }
  return os.str();
}

}  // namespace e2efa
