#include "net/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "alloc/maxmin.hpp"
#include "alloc/two_tier.hpp"
#include "contention/contention_graph.hpp"
#include "net/node_stack.hpp"
#include "sched/fifo_queue.hpp"
#include "sched/tag_scheduler.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr_source.hpp"
#include "util/assert.hpp"

namespace e2efa {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::k80211: return "802.11";
    case Protocol::kTwoTier: return "two-tier";
    case Protocol::kTwoTierBalanced: return "two-tier-mm";
    case Protocol::k2paCentralized: return "2PA-C";
    case Protocol::k2paDistributed: return "2PA-D";
    case Protocol::kMaxMin: return "maxmin";
    case Protocol::k2paStaticCw: return "2PA-staticCW";
  }
  return "?";
}

double RunResult::measured_subflow_share(int s, std::int64_t bps, int payload_bytes) const {
  E2EFA_ASSERT(s >= 0 && s < static_cast<int>(delivered_per_subflow.size()));
  const double bits =
      static_cast<double>(delivered_per_subflow[static_cast<std::size_t>(s)]) * 8.0 *
      payload_bytes;
  return bits / (sim_seconds * static_cast<double>(bps));
}

namespace {

/// Share given to lanes of flows that are currently inactive (they carry no
/// traffic; a tiny positive value keeps the scheduler's invariants).
constexpr double kInactiveShare = 1e-6;

/// Phase-1 dispatch over an arbitrary flow set. Returns false for plain
/// 802.11 (no allocation).
bool compute_allocation(Protocol proto, const Topology& topo, const FlowSet& flows,
                        Allocation* out) {
  if (proto == Protocol::k80211) return false;
  ContentionGraph graph(topo, flows);
  switch (proto) {
    case Protocol::kTwoTier: {
      const TwoTierResult r = two_tier_allocate(graph);
      E2EFA_ASSERT_MSG(r.status == LpStatus::kOptimal, "two-tier allocation failed");
      *out = r.allocation;
      return true;
    }
    case Protocol::kTwoTierBalanced:
      *out = maxmin_allocate_subflows(graph).allocation;
      return true;
    case Protocol::kMaxMin:
      *out = maxmin_allocate(graph).allocation;
      return true;
    case Protocol::k2paCentralized:
    case Protocol::k2paStaticCw: {
      const CentralizedResult r = centralized_allocate(graph);
      E2EFA_ASSERT_MSG(r.status == LpStatus::kOptimal, "centralized allocation failed");
      *out = r.allocation;
      return true;
    }
    case Protocol::k2paDistributed:
      *out = distributed_allocate(topo, flows, graph).allocation;
      return true;
    case Protocol::k80211:
      break;
  }
  return false;
}

/// Global-index allocation for one epoch: flows inactive in the epoch get
/// share 0 (lanes get kInactiveShare).
struct EpochAllocation {
  double start_s = 0.0;
  bool has_target = false;
  std::vector<double> flow_share;     ///< Global flow ids; 0 when inactive.
  std::vector<double> subflow_share;  ///< Global subflow ids; kInactiveShare
                                      ///< when inactive.
};

EpochAllocation allocate_epoch(Protocol proto, const Topology& topo,
                               const FlowSet& all_flows,
                               const std::vector<FlowId>& active, double start_s) {
  EpochAllocation out;
  out.start_s = start_s;
  out.flow_share.assign(static_cast<std::size_t>(all_flows.flow_count()), 0.0);
  out.subflow_share.assign(static_cast<std::size_t>(all_flows.subflow_count()),
                           kInactiveShare);
  if (active.empty() || proto == Protocol::k80211) return out;

  std::vector<Flow> specs;
  specs.reserve(active.size());
  for (FlowId f : active) specs.push_back(all_flows.flow(f));
  FlowSet sub(topo, specs);
  Allocation a;
  out.has_target = compute_allocation(proto, topo, sub, &a);
  if (!out.has_target) return out;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const FlowId g = active[i];
    out.flow_share[static_cast<std::size_t>(g)] = a.flow_share[i];
    for (int h = 0; h < all_flows.flow(g).length(); ++h) {
      out.subflow_share[static_cast<std::size_t>(all_flows.subflow_index(g, h))] =
          a.subflow_share[static_cast<std::size_t>(sub.subflow_index(static_cast<FlowId>(i), h))];
    }
  }
  return out;
}

}  // namespace

RunResult run_scenario(const Scenario& sc, Protocol proto, const SimConfig& cfg) {
  return run_scenario(sc, proto, cfg, {});
}

RunResult run_scenario(const Scenario& sc, Protocol proto, const SimConfig& cfg,
                       const std::vector<FlowActivity>& activity) {
  FlowSet flows(sc.topo, sc.flow_specs);
  const bool dynamic = !activity.empty();
  E2EFA_ASSERT_MSG(!dynamic || static_cast<int>(activity.size()) == flows.flow_count(),
                   "one FlowActivity per flow required");

  RunResult out;
  out.protocol = proto;
  out.sim_seconds = cfg.sim_seconds;
  const double total_s = cfg.warmup_seconds + cfg.sim_seconds;
  const TimeNs horizon = from_seconds(total_s);

  auto window_of = [&](FlowId f) {
    return dynamic ? activity[static_cast<std::size_t>(f)]
                   : FlowActivity{0.0, 1e300};
  };

  // ---- Epoch boundaries and per-epoch phase-1 allocations. ----
  std::set<double> boundary_set{0.0};
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    const FlowActivity w = window_of(f);
    E2EFA_ASSERT_MSG(w.start_s >= 0.0 && w.stop_s > w.start_s, "bad activity window");
    if (w.start_s > 0.0 && w.start_s < total_s) boundary_set.insert(w.start_s);
    if (w.stop_s > 0.0 && w.stop_s < total_s) boundary_set.insert(w.stop_s);
  }
  std::vector<EpochAllocation> epochs;
  for (double t : boundary_set) {
    std::vector<FlowId> active;
    for (FlowId f = 0; f < flows.flow_count(); ++f) {
      const FlowActivity w = window_of(f);
      if (w.start_s <= t && t < w.stop_s) active.push_back(f);
    }
    epochs.push_back(allocate_epoch(proto, sc.topo, flows, active, t));
  }

  out.has_target = epochs.front().has_target;
  if (out.has_target) {
    out.target_flow_share = epochs.front().flow_share;
    out.target_subflow_share = epochs.front().subflow_share;
  }
  if (dynamic) {
    for (const EpochAllocation& e : epochs) {
      out.epoch_starts_s.push_back(e.start_s);
      out.epoch_flow_share.push_back(e.flow_share);
    }
  }

  // ---- Phase 2: packet-level simulation. ----
  Simulator sim;
  Channel channel(sim, sc.topo, cfg.channel_bps);
  TrafficStats stats(flows);
  stats.set_warmup(from_seconds(cfg.warmup_seconds));
  Rng master(cfg.seed);

  MacConfig mac_cfg;
  mac_cfg.retry_limit = cfg.retry_limit;
  mac_cfg.use_rts_cts = cfg.use_rts_cts;

  std::vector<std::unique_ptr<NodeStack>> stacks;
  std::vector<TagScheduler*> tag_scheds(static_cast<std::size_t>(sc.topo.node_count()),
                                        nullptr);
  stacks.reserve(static_cast<std::size_t>(sc.topo.node_count()));
  for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
    std::unique_ptr<TxQueue> queue;
    std::unique_ptr<BackoffPolicy> backoff;
    TagAgent* tags = nullptr;
    if (proto == Protocol::k80211) {
      queue = std::make_unique<FifoQueue>(cfg.queue_capacity);
      backoff = std::make_unique<BebBackoff>(cfg.cw_min, cfg.cw_max);
    } else {
      std::vector<TagScheduler::SubflowConfig> lanes;
      for (int s = 0; s < flows.subflow_count(); ++s) {
        if (flows.subflow(s).src == n)
          lanes.push_back({s, epochs.front().subflow_share[static_cast<std::size_t>(s)]});
      }
      auto sched = std::make_unique<TagScheduler>(std::move(lanes), cfg.queue_capacity,
                                                  cfg.channel_bps, cfg.alpha);
      tag_scheds[static_cast<std::size_t>(n)] = sched.get();
      if (proto == Protocol::k2paStaticCw) {
        // Ablation: weighted queueing, but no tag feedback over the air.
        backoff = std::make_unique<ScaledCwBackoff>(
            cfg.cw_min, cfg.cw_max, std::min(1.0, std::max(sched->node_share(), 1e-3)));
      } else {
        tags = sched.get();
        backoff = std::make_unique<TagBackoff>(cfg.cw_min, cfg.cw_max, *sched);
      }
      queue = std::move(sched);
    }
    stacks.push_back(std::make_unique<NodeStack>(sim, channel, n, flows, stats, mac_cfg,
                                                 std::move(queue), std::move(backoff),
                                                 master.split(), tags));
  }

  // Re-allocation pushes at every later epoch boundary.
  for (std::size_t e = 1; e < epochs.size(); ++e) {
    const EpochAllocation* epoch = &epochs[e];
    sim.schedule_at(from_seconds(epoch->start_s), [&flows, &tag_scheds, epoch] {
      for (int s = 0; s < flows.subflow_count(); ++s) {
        TagScheduler* sched =
            tag_scheds[static_cast<std::size_t>(flows.subflow(s).src)];
        if (sched != nullptr)
          sched->update_share(s, epoch->subflow_share[static_cast<std::size_t>(s)]);
      }
    });
  }

  // Traffic sources at each flow's origin, gated by the activity windows.
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    NodeStack* stack = stacks[static_cast<std::size_t>(flows.flow(f).source())].get();
    auto src = std::make_unique<CbrSource>(
        sim, cfg.cbr_pps, cfg.payload_bytes,
        [stack, f](Packet p) { stack->inject_from_source(p, f); }, master);
    const FlowActivity w = window_of(f);
    const TimeNs until = std::min(horizon, from_seconds(std::min(w.stop_s, total_s)));
    CbrSource* raw = src.get();
    sim.schedule_at(from_seconds(std::min(w.start_s, total_s)),
                    [raw, until] { raw->start(until); });
    sources.push_back(std::move(src));
  }

  // Optional short-term fairness sampling: snapshot per-flow end-to-end
  // deliveries at fixed intervals and report the deltas. All sampler state
  // lives at function scope: the scheduled events reference it while
  // run_until executes below.
  std::vector<std::vector<std::int64_t>> windows;
  std::vector<std::int64_t> window_prev(static_cast<std::size_t>(flows.flow_count()), 0);
  std::function<void()> sample;
  if (cfg.sample_interval_seconds > 0.0) {
    const TimeNs interval = from_seconds(cfg.sample_interval_seconds);
    E2EFA_ASSERT(interval > 0);
    sample = [&sim, &stats, &flows, &windows, &window_prev, &sample, interval,
              horizon] {
      std::vector<std::int64_t> now(static_cast<std::size_t>(flows.flow_count()));
      for (FlowId f = 0; f < flows.flow_count(); ++f) {
        const std::int64_t total = stats.end_to_end(f);
        now[static_cast<std::size_t>(f)] = total - window_prev[static_cast<std::size_t>(f)];
        window_prev[static_cast<std::size_t>(f)] = total;
      }
      windows.push_back(std::move(now));
      if (sim.now() + interval <= horizon) sim.schedule_in(interval, sample);
    };
    sim.schedule_at(from_seconds(cfg.warmup_seconds) + interval, sample);
  }

  sim.run_until(horizon);

  // ---- Collect. ----
  out.delivered_per_subflow.resize(static_cast<std::size_t>(flows.subflow_count()));
  for (int s = 0; s < flows.subflow_count(); ++s)
    out.delivered_per_subflow[static_cast<std::size_t>(s)] = stats.subflow(s).delivered;
  out.end_to_end_per_flow.resize(static_cast<std::size_t>(flows.flow_count()));
  for (FlowId f = 0; f < flows.flow_count(); ++f)
    out.end_to_end_per_flow[static_cast<std::size_t>(f)] = stats.end_to_end(f);
  out.total_end_to_end = stats.total_end_to_end();
  for (int s = 0; s < flows.subflow_count(); ++s) {
    out.dropped_queue += stats.subflow(s).dropped_queue;
    out.dropped_mac += stats.subflow(s).dropped_mac;
  }
  out.lost_packets = stats.total_lost();
  out.loss_ratio = stats.loss_ratio();
  out.channel = channel.stats();
  out.mean_delay_s.resize(static_cast<std::size_t>(flows.flow_count()));
  out.max_delay_s.resize(static_cast<std::size_t>(flows.flow_count()));
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    out.mean_delay_s[static_cast<std::size_t>(f)] = stats.delay(f).mean();
    out.max_delay_s[static_cast<std::size_t>(f)] = stats.delay(f).max();
  }
  out.window_end_to_end = std::move(windows);
  return out;
}

}  // namespace e2efa
