#include "net/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "check/check.hpp"
#include "alloc/maxmin.hpp"
#include "alloc/two_tier.hpp"
#include "contention/clique_store.hpp"
#include "contention/contention_graph.hpp"
#include "ctrl/admission.hpp"
#include "net/mobility.hpp"
#include "net/node_stack.hpp"
#include "route/routing.hpp"
#include "sched/fifo_queue.hpp"
#include "sched/tag_scheduler.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr_source.hpp"
#include "transport/ack_plane.hpp"
#include "transport/aimd.hpp"
#include "transport/bbr.hpp"
#include "util/assert.hpp"

namespace e2efa {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::k80211: return "802.11";
    case Protocol::kTwoTier: return "two-tier";
    case Protocol::kTwoTierBalanced: return "two-tier-mm";
    case Protocol::k2paCentralized: return "2PA-C";
    case Protocol::k2paDistributed: return "2PA-D";
    case Protocol::kMaxMin: return "maxmin";
    case Protocol::k2paStaticCw: return "2PA-staticCW";
    case Protocol::k2paDistributedCtrl: return "2PA-Dctrl";
  }
  return "?";
}

double RunResult::measured_subflow_share(int s, std::int64_t bps, int payload_bytes) const {
  E2EFA_ASSERT(s >= 0 && s < static_cast<int>(delivered_per_subflow.size()));
  const double bits =
      static_cast<double>(delivered_per_subflow[static_cast<std::size_t>(s)]) * 8.0 *
      payload_bytes;
  return bits / (sim_seconds * static_cast<double>(bps));
}

namespace {

/// Share given to lanes of flows that are currently inactive (they carry no
/// traffic; a tiny positive value keeps the scheduler's invariants).
constexpr double kInactiveShare = 1e-6;

/// Phase-1 dispatch over an arbitrary flow set. Sets *has_target false for
/// plain 802.11 (no allocation). For the centralized family a solve whose
/// basic-share floors had to be relaxed (min_relaxation < 1: the clique
/// rows cannot carry every flow's basic share) reports kInfeasible — the
/// distributed form keeps its by-design local relaxations.
LpStatus compute_allocation(Protocol proto, const Topology& topo, const FlowSet& flows,
                            const TopologyMask* mask, Allocation* out,
                            bool* has_target,
                            const std::vector<std::vector<int>>* cliques = nullptr) {
  *has_target = false;
  if (proto == Protocol::k80211) return LpStatus::kOptimal;
  ContentionGraph graph(topo, flows);
  switch (proto) {
    case Protocol::kTwoTier: {
      const TwoTierResult r = two_tier_allocate(graph, cliques);
      if (r.status != LpStatus::kOptimal) return r.status;
      if (r.min_relaxation < 1.0 - 1e-9) return LpStatus::kInfeasible;
      *out = r.allocation;
      *has_target = true;
      return LpStatus::kOptimal;
    }
    case Protocol::kTwoTierBalanced:
      *out = maxmin_allocate_subflows(graph, {}, cliques).allocation;
      *has_target = true;
      return LpStatus::kOptimal;
    case Protocol::kMaxMin:
      *out = maxmin_allocate(graph, {}, cliques).allocation;
      *has_target = true;
      return LpStatus::kOptimal;
    case Protocol::k2paCentralized:
    case Protocol::k2paStaticCw: {
      const CentralizedResult r = centralized_allocate(graph, cliques);
      if (r.status != LpStatus::kOptimal) return r.status;
      if (r.min_relaxation < 1.0 - 1e-9) return LpStatus::kInfeasible;
      *out = r.allocation;
      *has_target = true;
      return LpStatus::kOptimal;
    }
    case Protocol::k2paDistributed:
      *out = distributed_allocate(topo, flows, graph).allocation;
      *has_target = true;
      return LpStatus::kOptimal;
    case Protocol::k2paDistributedCtrl:
      // The oracle the in-band agents are measured against: identical
      // distributed algorithm, with the neighbor exchange restricted to the
      // epoch's surviving topology (a dead neighbor's HELLOs go unheard).
      *out = distributed_allocate(topo, flows, graph, mask).allocation;
      *has_target = true;
      return LpStatus::kOptimal;
    case Protocol::k80211:
      break;
  }
  return LpStatus::kOptimal;
}

/// Global-index allocation for one epoch: flows inactive in the epoch get
/// share 0 (lanes get kInactiveShare). Indices are over the *sim* flow set
/// (provisioned flows plus repair-route variants).
struct EpochAllocation {
  double start_s = 0.0;
  bool has_target = false;
  LpStatus status = LpStatus::kOptimal;
  std::vector<double> flow_share;     ///< Sim flow ids; 0 when inactive.
  std::vector<double> subflow_share;  ///< Sim subflow ids; kInactiveShare
                                      ///< when inactive.
};

EpochAllocation allocate_epoch(Protocol proto, const Topology& topo,
                               const FlowSet& all_flows,
                               const std::vector<FlowId>& active, double start_s,
                               const TopologyMask* mask, CheckContext* check,
                               CliqueStore* store, Profiler* profile) {
  EpochAllocation out;
  out.start_s = start_s;
  out.flow_share.assign(static_cast<std::size_t>(all_flows.flow_count()), 0.0);
  out.subflow_share.assign(static_cast<std::size_t>(all_flows.subflow_count()),
                           kInactiveShare);
  if (active.empty() || proto == Protocol::k80211) return out;

  std::vector<Flow> specs;
  specs.reserve(active.size());
  for (FlowId f : active) specs.push_back(all_flows.flow(f));
  FlowSet sub(topo, specs);

  // Incremental clique path (centralized family): the store maintains the
  // maximal cliques of the *sim* contention graph restricted to the
  // epoch's active subflows, so an epoch boundary re-derives only the
  // cliques around the flows that toggled. The epoch's subgraph is
  // vertex-for-vertex the graph over `sub` (contention is pure geometry of
  // the unchanged endpoints), so relabeling the snapshot into sub ids and
  // re-canonicalizing yields exactly what from-scratch enumeration on
  // `sub` would — downstream LP rows are bit-identical.
  std::vector<std::vector<int>> epoch_cliques;
  const std::vector<std::vector<int>>* cliques = nullptr;
  if (store != nullptr) {
    Profiler::Scope prof(profile, Profiler::Phase::kClique);
    std::vector<char> want(static_cast<std::size_t>(all_flows.subflow_count()), 0);
    std::vector<int> sub_id(static_cast<std::size_t>(all_flows.subflow_count()), -1);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const FlowId g = active[i];
      for (int h = 0; h < all_flows.flow(g).length(); ++h) {
        const int full = all_flows.subflow_index(g, h);
        want[static_cast<std::size_t>(full)] = 1;
        sub_id[static_cast<std::size_t>(full)] =
            sub.subflow_index(static_cast<FlowId>(i), h);
      }
    }
    store->set_active(want);
    epoch_cliques = store->cliques();
    for (auto& c : epoch_cliques) {
      for (int& v : c) v = sub_id[static_cast<std::size_t>(v)];
      std::sort(c.begin(), c.end());
    }
    std::sort(epoch_cliques.begin(), epoch_cliques.end());
    cliques = &epoch_cliques;
  }

  Allocation a;
  {
    Profiler::Scope prof(profile, Profiler::Phase::kSolve);
    out.status =
        compute_allocation(proto, topo, sub, mask, &a, &out.has_target, cliques);
  }
  E2EFA_ASSERT_MSG(out.status == LpStatus::kOptimal,
                   "phase-1 allocation infeasible: basic shares exceed clique capacity");
  if (!out.has_target) return out;
  if (check != nullptr) {
    // Post-solve oracle. Only centralized 2PA *rejects* solves whose
    // flow-level basic-share floors had to be relaxed, so only it promises
    // the floor (two-tier floors per-subflow shares — the end-to-end gap is
    // the paper's critique of it — and the distributed variants keep their
    // by-design local relaxations); everything else is held to clique
    // feasibility alone.
    const bool expect_floor = proto == Protocol::k2paCentralized ||
                              proto == Protocol::k2paStaticCw;
    // The distributed family's per-source local solves may mildly
    // oversubscribe a clique (partial knowledge); they get the documented
    // envelope instead of the strict bound.
    const bool strict_clique = proto != Protocol::k2paDistributed &&
                               proto != Protocol::k2paDistributedCtrl;
    ContentionGraph graph(topo, sub);
    check->check_allocation(graph, a, expect_floor, strict_clique, start_s);
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    const FlowId g = active[i];
    out.flow_share[static_cast<std::size_t>(g)] = a.flow_share[i];
    for (int h = 0; h < all_flows.flow(g).length(); ++h) {
      out.subflow_share[static_cast<std::size_t>(all_flows.subflow_index(g, h))] =
          a.subflow_share[static_cast<std::size_t>(sub.subflow_index(static_cast<FlowId>(i), h))];
    }
  }
  return out;
}

/// True when every node and link of `path` survives under `mask`.
bool path_alive(const std::vector<NodeId>& path, const TopologyMask& mask) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!mask.node_alive(path[i])) return false;
    if (i + 1 < path.size() && !mask.link_alive(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace

RunResult run_scenario(const Scenario& sc, Protocol proto, const SimConfig& cfg) {
  return run_scenario(sc, proto, cfg, sc.activity);
}

RunResult run_scenario(const Scenario& sc, Protocol proto, const SimConfig& cfg,
                       const std::vector<FlowActivity>& activity_arg) {
  // Everything before the event loop — topology prep, clique enumeration,
  // precomputed solves, stack wiring — accrues to the setup phase; the scope
  // is released just before the simulator starts running.
  auto setup_prof = std::make_unique<Profiler::Scope>(cfg.profile,
                                                      Profiler::Phase::kSetup);
  // Structural validation up front, with messages naming the actual defect
  // (FlowSet would reject these too, but less helpfully).
  for (const Flow& spec : sc.flow_specs) {
    E2EFA_ASSERT_MSG(spec.path.size() >= 2, "flow path needs at least two nodes");
    E2EFA_ASSERT_MSG(spec.path.front() != spec.path.back(),
                     "flow source equals destination");
  }
  // An explicit activity argument overrides the scenario's embedded windows
  // (callers that predate Scenario::activity keep their behavior).
  const std::vector<FlowActivity>& activity =
      activity_arg.empty() ? sc.activity : activity_arg;
  // The effective fault schedule: scripted faults plus whatever link churn
  // the mobility walks compile down to. With no mobility this is an exact
  // copy of sc.faults, so fault-free and scripted-fault runs are untouched.
  FaultPlan plan = sc.faults;
  if (!sc.mobility.empty())
    compile_mobility(sc.topo, sc.mobility,
                     cfg.warmup_seconds + cfg.sim_seconds, plan);
  plan.validate(sc.topo.node_count());

  // The scenario's own flows ("logical" flows: what the caller asked for and
  // what the RunResult reports on).
  FlowSet logical(sc.topo, sc.flow_specs);
  const FlowId F = logical.flow_count();
  const bool dynamic = !activity.empty();
  E2EFA_ASSERT_MSG(!dynamic || static_cast<FlowId>(activity.size()) == F,
                   "one FlowActivity per flow required");

  RunResult out;
  out.protocol = proto;
  out.sim_seconds = cfg.sim_seconds;
  const double total_s = cfg.warmup_seconds + cfg.sim_seconds;
  const TimeNs horizon = from_seconds(total_s);

  auto window_of = [&](FlowId f) {
    return dynamic ? activity[static_cast<std::size_t>(f)]
                   : FlowActivity{0.0, 1e300};
  };

  // ---- Epoch boundaries: activity changes ∪ fault event times. ----
  std::set<double> boundary_set{0.0};
  for (FlowId f = 0; f < F; ++f) {
    const FlowActivity w = window_of(f);
    E2EFA_ASSERT_MSG(w.start_s >= 0.0 && w.stop_s > w.start_s, "bad activity window");
    if (w.start_s > 0.0 && w.start_s < total_s) boundary_set.insert(w.start_s);
    if (w.stop_s > 0.0 && w.stop_s < total_s) boundary_set.insert(w.stop_s);
  }
  for (double t : plan.event_times()) {
    // Events at t == 0 fold into the initial mask; events past the horizon
    // never fire.
    if (t > 0.0 && t < total_s) boundary_set.insert(t);
  }
  const std::vector<double> boundaries(boundary_set.begin(), boundary_set.end());
  const int E = static_cast<int>(boundaries.size());

  // ---- Per-epoch surviving topology and route repair. ----
  std::vector<TopologyMask> masks;
  masks.reserve(static_cast<std::size_t>(E));
  for (double t : boundaries) masks.push_back(plan.mask_at(t, sc.topo.node_count()));

  // Route variants per logical flow; variant 0 is the provisioned path.
  // Repair keeps the provisioned route whenever it is still alive (route
  // stability) and otherwise re-runs min-hop routing on the surviving graph.
  std::vector<std::vector<std::vector<NodeId>>> variants(static_cast<std::size_t>(F));
  for (FlowId f = 0; f < F; ++f)
    variants[static_cast<std::size_t>(f)].push_back(logical.flow(f).path);
  // epoch_variant[e][f]: variant index active in epoch e, -1 = suspended.
  std::vector<std::vector<int>> epoch_variant(
      static_cast<std::size_t>(E), std::vector<int>(static_cast<std::size_t>(F), 0));
  for (int e = 0; e < E; ++e) {
    const TopologyMask& mask = masks[static_cast<std::size_t>(e)];
    if (mask.all_up()) continue;  // everything on its provisioned route
    for (FlowId f = 0; f < F; ++f) {
      auto& vars = variants[static_cast<std::size_t>(f)];
      if (path_alive(vars[0], mask)) continue;
      auto repaired = shortest_path(sc.topo, vars[0].front(), vars[0].back(), mask);
      if (!repaired.has_value()) {
        epoch_variant[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)] = -1;
        continue;
      }
      auto it = std::find(vars.begin(), vars.end(), *repaired);
      if (it == vars.end()) {
        vars.push_back(std::move(*repaired));
        it = vars.end() - 1;
      }
      epoch_variant[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)] =
          static_cast<int>(it - vars.begin());
    }
  }

  // ---- The sim flow set: one flow per (logical flow, route variant). All
  // provisioned variants come first, so sim flow/subflow ids are a prefix
  // extension of the logical ids (fault-free runs: identical sets). ----
  std::vector<Flow> sim_specs;
  std::vector<FlowId> logical_of;                 // sim flow -> logical flow
  std::vector<std::vector<FlowId>> sim_flow_of(   // [logical][variant] -> sim
      static_cast<std::size_t>(F));
  for (FlowId f = 0; f < F; ++f) {
    sim_specs.push_back(logical.flow(f));
    logical_of.push_back(f);
    sim_flow_of[static_cast<std::size_t>(f)].push_back(f);
  }
  for (FlowId f = 0; f < F; ++f) {
    const auto& vars = variants[static_cast<std::size_t>(f)];
    for (std::size_t v = 1; v < vars.size(); ++v) {
      Flow repaired;
      repaired.path = vars[v];
      repaired.weight = logical.flow(f).weight;
      sim_flow_of[static_cast<std::size_t>(f)].push_back(
          static_cast<FlowId>(sim_specs.size()));
      sim_specs.push_back(std::move(repaired));
      logical_of.push_back(f);
    }
  }
  FlowSet flows(sc.topo, sim_specs);

  // Invariant oracles: latch the run parameters before any hook can fire
  // (the phase-1 post-solve checks below and every packet-sim hook).
  CheckContext* const check = cfg.check;
  if (check != nullptr) {
    CheckRunInfo info;
    info.node_count = sc.topo.node_count();
    info.cw_min = cfg.cw_min;
    info.cw_max = cfg.cw_max;
    info.use_rts_cts = cfg.use_rts_cts;
    info.scaled_cw = proto == Protocol::k2paStaticCw;
    info.queue_capacity = cfg.queue_capacity;
    const MacConfig mac_defaults;
    info.ctrl_cw = mac_defaults.ctrl_cw;
    info.slot = mac_defaults.slot;
    info.sifs = mac_defaults.sifs;
    info.transport_dupack_threshold = cfg.transport.dupack_threshold;
    info.subflows.resize(static_cast<std::size_t>(flows.subflow_count()));
    for (int s = 0; s < flows.subflow_count(); ++s) {
      const Subflow& sf = flows.subflow(s);
      CheckRunInfo::SubflowInfo& m = info.subflows[static_cast<std::size_t>(s)];
      m.flow = sf.flow;
      m.hop = sf.hop;
      m.src = sf.src;
      m.dst = sf.dst;
      m.last_hop = sf.hop + 1 >= flows.flow(sf.flow).length();
      m.prev_subflow =
          sf.hop > 0 ? flows.subflow_index(sf.flow, sf.hop - 1) : -1;
    }
    check->begin_run(info);
  }

  // ---- Admission control over open-loop arrivals. A flow whose window
  // starts mid-run is a *candidate*: it enters only if every clique its
  // subflows touch keeps all admitted flows' basic shares feasible
  // (Ganesan's clique bound). The founding population (start_s == 0) is the
  // scenario's own responsibility. Decisions are made in arrival order
  // against the flows admitted so far, on provisioned routes; the
  // distributed protocols use the distributed gate (per-node partial
  // knowledge under the arrival instant's mask — as strict or stricter than
  // the oracle), the centralized family the centralized twin, and plain
  // 802.11 admits everything (it allocates nothing). ----
  std::vector<char> admitted_flag(static_cast<std::size_t>(F), 1);
  if (dynamic && proto != Protocol::k80211) {
    std::vector<std::pair<double, FlowId>> arrivals;
    for (FlowId f = 0; f < F; ++f) {
      const double t = window_of(f).start_s;
      if (t > 0.0 && t < total_s) arrivals.emplace_back(t, f);
    }
    std::sort(arrivals.begin(), arrivals.end());
    if (!arrivals.empty()) {
      ContentionGraph gate_graph(sc.topo, logical);
      const bool dist_gate = proto == Protocol::k2paDistributed ||
                             proto == Protocol::k2paDistributedCtrl;
      for (const auto& [t, f] : arrivals) {
        std::vector<char> present(static_cast<std::size_t>(F), 0);
        for (FlowId j = 0; j < F; ++j) {
          if (j == f || !admitted_flag[static_cast<std::size_t>(j)]) continue;
          const FlowActivity w = window_of(j);
          if (w.start_s <= t && t < w.stop_s) present[static_cast<std::size_t>(j)] = 1;
        }
        AdmissionDecision d;
        if (dist_gate) {
          const TopologyMask gate_mask = plan.mask_at(t, sc.topo.node_count());
          d = admission_check_distributed(sc.topo, logical, gate_graph, present,
                                          f, gate_mask.all_up() ? nullptr : &gate_mask);
        } else {
          d = admission_check_centralized(logical, gate_graph, present, f);
        }
        admitted_flag[static_cast<std::size_t>(f)] = d.admitted ? 1 : 0;
        out.admissions.push_back({f, t, d.admitted, static_cast<int>(d.reason),
                                  d.worst_load, -1});
        if (check != nullptr)
          check->on_admission(f, d.admitted, d.worst_load, dist_gate,
                              from_seconds(t));
      }
    }
  }

  // active_of[e][f]: sim flow carrying logical flow f in epoch e (-1 when
  // suspended — the destination is unreachable under the epoch's mask).
  std::vector<std::vector<FlowId>> active_of(
      static_cast<std::size_t>(E), std::vector<FlowId>(static_cast<std::size_t>(F)));
  for (int e = 0; e < E; ++e) {
    for (FlowId f = 0; f < F; ++f) {
      const int v = epoch_variant[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)];
      active_of[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)] =
          v < 0 ? -1 : sim_flow_of[static_cast<std::size_t>(f)][static_cast<std::size_t>(v)];
    }
  }

  // ---- Per-epoch phase-1 allocations over the reachable active flows.
  // For the in-band protocol this allocation is the *oracle*: the sim's
  // AllocAgents must converge to it on their own, so it is computed against
  // the epoch's surviving topology but never pushed into the schedulers. ----
  const bool dctrl = proto == Protocol::k2paDistributedCtrl;
  // The centralized family solves over global cliques; maintain them
  // incrementally across epochs (the distributed variants enumerate
  // per-node local cliques instead, which are already neighborhood-sized).
  const bool centralized_family =
      proto == Protocol::kTwoTier || proto == Protocol::kTwoTierBalanced ||
      proto == Protocol::kMaxMin || proto == Protocol::k2paCentralized ||
      proto == Protocol::k2paStaticCw;
  std::unique_ptr<ContentionGraph> sim_graph;
  std::unique_ptr<CliqueStore> clique_store;
  if (centralized_family) {
    sim_graph = std::make_unique<ContentionGraph>(sc.topo, flows);
    // Start all-inactive: epoch 0's set_active seeds the first enumeration.
    clique_store = std::make_unique<CliqueStore>(
        *sim_graph, std::vector<char>(static_cast<std::size_t>(flows.subflow_count()), 0));
  }
  std::vector<EpochAllocation> epochs;
  std::vector<std::vector<FlowId>> epoch_active_flows;
  for (int e = 0; e < E; ++e) {
    const double t = boundaries[static_cast<std::size_t>(e)];
    std::vector<FlowId> active;
    for (FlowId f = 0; f < F; ++f) {
      if (!admitted_flag[static_cast<std::size_t>(f)]) continue;
      const FlowActivity w = window_of(f);
      if (!(w.start_s <= t && t < w.stop_s)) continue;
      const FlowId g = active_of[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)];
      if (g >= 0) active.push_back(g);
    }
    epochs.push_back(allocate_epoch(proto, sc.topo, flows, active, t,
                                    dctrl ? &masks[static_cast<std::size_t>(e)]
                                          : nullptr,
                                    cfg.check, clique_store.get(), cfg.profile));
    epoch_active_flows.push_back(std::move(active));
    if (proto != Protocol::k80211) out.epoch_lp_status.push_back(epochs.back().status);
  }

  out.has_target = epochs.front().has_target;
  if (out.has_target) {
    out.target_subflow_share = epochs.front().subflow_share;
    out.target_flow_share.assign(static_cast<std::size_t>(F), 0.0);
    for (FlowId f = 0; f < F; ++f) {
      const FlowId g = active_of[0][static_cast<std::size_t>(f)];
      if (g >= 0)
        out.target_flow_share[static_cast<std::size_t>(f)] =
            epochs.front().flow_share[static_cast<std::size_t>(g)];
    }
  }
  const bool multi = dynamic || E > 1;
  if (multi) {
    for (int e = 0; e < E; ++e) {
      out.epoch_starts_s.push_back(boundaries[static_cast<std::size_t>(e)]);
      std::vector<double> share(static_cast<std::size_t>(F), 0.0);
      for (FlowId f = 0; f < F; ++f) {
        const FlowId g =
            active_of[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)];
        if (g >= 0)
          share[static_cast<std::size_t>(f)] =
              epochs[static_cast<std::size_t>(e)].flow_share[static_cast<std::size_t>(g)];
      }
      out.epoch_flow_share.push_back(std::move(share));
    }
  }

  // ---- Phase 2: packet-level simulation. ----
  Simulator sim;
  Channel channel(sim, sc.topo, cfg.channel_bps);
  TrafficStats stats(flows);
  stats.set_warmup(from_seconds(cfg.warmup_seconds));
  Rng master(cfg.seed);

  // Observability: one sink pointer threaded through every layer. Null —
  // the default — keeps all hot paths on their pre-observability branch.
  TraceSink* const trace = cfg.trace;
  channel.set_trace(trace);
  channel.set_check(check);
  channel.set_profiler(cfg.profile);
  if (trace != nullptr) {
    trace->record<TraceCat::kMeta>(
        0, TraceEvent::kRunMeta, -1, sc.topo.node_count(), F,
        static_cast<double>(cfg.channel_bps), static_cast<double>(cfg.payload_bytes));
    for (int s = 0; s < flows.subflow_count(); ++s) {
      const Subflow& sf = flows.subflow(s);
      trace->record<TraceCat::kMeta>(
          0, TraceEvent::kSubflowMeta, static_cast<std::int16_t>(sf.src), s,
          logical_of[static_cast<std::size_t>(sf.flow)],
          static_cast<double>(sf.hop));
    }
  }
  // Phase-1 emission for one epoch: the solve record, then the resulting
  // per-logical-flow targets (0 = inactive or suspended in that epoch).
  auto trace_epoch_allocation = [&](int e, TimeNs t) {
    if (trace == nullptr) return;
    const EpochAllocation& epoch = epochs[static_cast<std::size_t>(e)];
    trace->record<TraceCat::kLp>(t, TraceEvent::kLpResolve, -1, e,
                                 static_cast<std::int32_t>(epoch.status),
                                 epoch.start_s);
    for (FlowId f = 0; f < F; ++f) {
      const FlowId g = active_of[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)];
      const double share =
          g >= 0 && epoch.has_target
              ? epoch.flow_share[static_cast<std::size_t>(g)]
              : 0.0;
      trace->record<TraceCat::kLp>(t, TraceEvent::kFlowTarget, -1, f, -1, share);
    }
  };
  trace_epoch_allocation(0, 0);

  // Live fault state for the PHY. Installed only when the plan does
  // anything, so fault-free runs keep the exact pre-fault channel path.
  std::unique_ptr<FaultRuntime> faults;
  if (!plan.empty()) {
    faults = std::make_unique<FaultRuntime>(plan, sc.topo.node_count(), cfg.seed);
    channel.set_faults(faults.get());
  }

  MacConfig mac_cfg;
  mac_cfg.retry_limit = cfg.retry_limit;
  mac_cfg.use_rts_cts = cfg.use_rts_cts;

  std::vector<std::unique_ptr<NodeStack>> stacks;
  std::vector<TagScheduler*> tag_scheds(static_cast<std::size_t>(sc.topo.node_count()),
                                        nullptr);
  std::int64_t link_failures = 0;
  stacks.reserve(static_cast<std::size_t>(sc.topo.node_count()));
  for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
    std::unique_ptr<TxQueue> queue;
    std::unique_ptr<BackoffPolicy> backoff;
    TagAgent* tags = nullptr;
    if (proto == Protocol::k80211) {
      auto fifo = std::make_unique<FifoQueue>(cfg.queue_capacity);
      fifo->set_check(check, n);
      queue = std::move(fifo);
      backoff = std::make_unique<BebBackoff>(cfg.cw_min, cfg.cw_max);
    } else {
      std::vector<TagScheduler::SubflowConfig> lanes;
      // In-band runs must not start from the oracle's answer: lanes begin
      // at the inactive floor and the agents bootstrap them locally.
      for (int s : flows.sourced_at(n))
        lanes.push_back(
            {s, dctrl ? kInactiveShare
                      : epochs.front().subflow_share[static_cast<std::size_t>(s)]});
      auto sched = std::make_unique<TagScheduler>(std::move(lanes), cfg.queue_capacity,
                                                  cfg.channel_bps, cfg.alpha);
      sched->set_trace(trace, static_cast<std::int16_t>(n));
      sched->set_check(check, n);
      tag_scheds[static_cast<std::size_t>(n)] = sched.get();
      if (proto == Protocol::k2paStaticCw) {
        // Ablation: weighted queueing, but no tag feedback over the air.
        backoff = std::make_unique<ScaledCwBackoff>(
            cfg.cw_min, cfg.cw_max, std::min(1.0, std::max(sched->node_share(), 1e-3)));
      } else {
        tags = sched.get();
        backoff = std::make_unique<TagBackoff>(cfg.cw_min, cfg.cw_max, *sched);
      }
      queue = std::move(sched);
    }
    stacks.push_back(std::make_unique<NodeStack>(sim, channel, n, flows, stats, mac_cfg,
                                                 std::move(queue), std::move(backoff),
                                                 master.split(), tags));
    stacks.back()->set_trace(trace);
    stacks.back()->set_check(check);
    stacks.back()->set_link_failure_listener(
        [&link_failures](const Packet&, TimeNs) { ++link_failures; });
  }

  // ---- In-band control plane: one AllocAgent per node, wired into its
  // MAC. Everything in this branch (including the extra RNG splits) only
  // happens for k2paDistributedCtrl, so every other protocol's trajectory
  // is untouched. ----
  std::unique_ptr<ContentionGraph> ctrl_graph;
  std::vector<std::unique_ptr<AllocAgent>> agents;
  // Activity bitmap over sim subflows for epoch e (what the agents may
  // hear: inactive subflows carry no traffic and leave every Own set).
  auto active_bitmap_of = [&](int e) {
    std::vector<char> b(static_cast<std::size_t>(flows.subflow_count()), 0);
    for (FlowId g : epoch_active_flows[static_cast<std::size_t>(e)])
      for (int h = 0; h < flows.flow(g).length(); ++h)
        b[static_cast<std::size_t>(flows.subflow_index(g, h))] = 1;
    return b;
  };
  // Per-sim-flow activity bitmap for epoch e (the admission oracle's view).
  auto flow_bitmap_of = [&](int e) {
    std::vector<char> b(static_cast<std::size_t>(flows.flow_count()), 0);
    for (FlowId g : epoch_active_flows[static_cast<std::size_t>(e)])
      b[static_cast<std::size_t>(g)] = 1;
    return b;
  };
  if (check != nullptr) check->note_active_flows(flow_bitmap_of(0), 0);
  if (dctrl) {
    // Any dynamics — scripted faults, churn windows, or mobility — turn on
    // the loss-hardened control plane (retransmits, generation stamps,
    // staleness degradation); a plain static run keeps the lean protocol so
    // its trajectory is byte-identical to earlier builds.
    CtrlConfig ctrl_cfg = cfg.ctrl;
    if (!plan.empty() || dynamic || !sc.mobility.empty()) ctrl_cfg.hardened = true;
    ctrl_graph = std::make_unique<ContentionGraph>(sc.topo, flows);
    Rng ctrl_master = master.split();
    for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
      agents.push_back(std::make_unique<AllocAgent>(
          sim, stacks[static_cast<std::size_t>(n)]->mac(), sc.topo, flows,
          *ctrl_graph, tag_scheds[static_cast<std::size_t>(n)], ctrl_cfg,
          ctrl_master.split(), trace));
      agents.back()->set_check(check);
      agents.back()->set_profiler(cfg.profile);
    }
    const std::vector<char> b0 = active_bitmap_of(0);
    for (auto& a : agents) a->note_active_set(b0);
    for (auto& a : agents) a->start();
  }

  // In-band ADMIT rounds: at each admission-gated arrival's boundary the
  // candidate's source runs the hop-by-hop ADMIT_REQ/ADMIT_RSP round over
  // the live control plane. The verdict is diagnostic (the offline gate
  // above already decided); RunResult::Admission::inband records what the
  // network itself concluded, for differential comparison.
  std::vector<std::vector<std::size_t>> inband_at(static_cast<std::size_t>(E));
  std::vector<FlowId> inband_sim_flow(out.admissions.size(), -1);
  if (dctrl) {
    for (std::size_t i = 0; i < out.admissions.size(); ++i) {
      const double t = out.admissions[i].at_s;
      const auto it = std::lower_bound(boundaries.begin(), boundaries.end(), t);
      if (it == boundaries.end() || *it != t) continue;
      const int e = static_cast<int>(it - boundaries.begin());
      const FlowId f = out.admissions[i].flow;
      const int v = std::max(
          epoch_variant[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)], 0);
      inband_sim_flow[i] =
          sim_flow_of[static_cast<std::size_t>(f)][static_cast<std::size_t>(v)];
      inband_at[static_cast<std::size_t>(e)].push_back(i);
    }
  }

  // ---- Fault bookkeeping shared by the scheduled epoch events. ----
  // Which sim flow carries each logical flow *right now* (-1 = suspended);
  // read by the traffic sources at injection time.
  std::vector<FlowId> active_now = active_of[0];
  // Earliest unhealed disruption per logical flow (-1 = none pending).
  std::vector<double> pending_fault_s(static_cast<std::size_t>(F), -1.0);
  for (FlowId f = 0; f < F; ++f)
    if (active_now[static_cast<std::size_t>(f)] < 0)
      pending_fault_s[static_cast<std::size_t>(f)] = 0.0;
  std::vector<RunResult::Recovery> recoveries;
  std::vector<std::vector<std::int64_t>> epoch_e2e;
  std::vector<std::int64_t> epoch_prev(static_cast<std::size_t>(F), 0);

  auto logical_e2e = [&](FlowId f) {
    std::int64_t sum = 0;
    for (FlowId g : sim_flow_of[static_cast<std::size_t>(f)]) sum += stats.end_to_end(g);
    return sum;
  };
  auto snapshot_epoch = [&] {
    std::vector<std::int64_t> row(static_cast<std::size_t>(F));
    for (FlowId f = 0; f < F; ++f) {
      const std::int64_t cur = logical_e2e(f);
      row[static_cast<std::size_t>(f)] = cur - epoch_prev[static_cast<std::size_t>(f)];
      epoch_prev[static_cast<std::size_t>(f)] = cur;
    }
    epoch_e2e.push_back(std::move(row));
  };

  // Recovery detection (the first end-to-end delivery on the *current*
  // route of a disrupted flow heals it — stale in-flight packets on a
  // pre-fault route do not count) composed with delivery tracing; both ride
  // the same TrafficStats listener slot.
  const bool want_recovery = !plan.events().empty();
  if (want_recovery || trace != nullptr) {
    stats.set_delivery_listener([&, want_recovery](FlowId g, TimeNs now,
                                                   TimeNs delay) {
      const FlowId f = logical_of[static_cast<std::size_t>(g)];
      if (trace != nullptr)
        trace->record<TraceCat::kFlow>(
            now, TraceEvent::kDelivery,
            static_cast<std::int16_t>(flows.flow(g).destination()), f, g,
            to_seconds(delay));
      if (!want_recovery) return;
      if (pending_fault_s[static_cast<std::size_t>(f)] < 0.0) return;
      if (active_now[static_cast<std::size_t>(f)] != g) return;
      recoveries.push_back(
          {f, pending_fault_s[static_cast<std::size_t>(f)], to_seconds(now)});
      pending_fault_s[static_cast<std::size_t>(f)] = -1.0;
    });
  }

  // One event per later epoch boundary: close the ending epoch's goodput
  // window, apply the new surviving topology, push the re-converged shares
  // into the live schedulers, and switch every flow to its epoch route.
  // Scheduled at setup, so it precedes all same-instant packet events.
  for (int e = 1; e < E; ++e) {
    sim.schedule_at(from_seconds(boundaries[static_cast<std::size_t>(e)]), [&, e] {
      if (multi) snapshot_epoch();
      if (faults) faults->apply(masks[static_cast<std::size_t>(e)]);
      if (trace != nullptr && !plan.empty())
        trace->record<TraceCat::kFault>(sim.now(), TraceEvent::kFaultEpoch, -1, e,
                                        -1, boundaries[static_cast<std::size_t>(e)]);
      trace_epoch_allocation(e, sim.now());
      // The admission/stale-rate oracle learns the new population before the
      // control plane reacts, so every lane update at or after the boundary
      // is judged against the current flow set.
      if (check != nullptr) check->note_active_flows(flow_bitmap_of(e), sim.now());
      if (dctrl) {
        // No oracle push: tell the agents what went (in)active and let the
        // network re-converge through its own HELLO/CONSTRAINT/RATE cycle.
        const std::vector<char> b = active_bitmap_of(e);
        for (auto& a : agents) a->note_active_set(b);
        for (std::size_t i : inband_at[static_cast<std::size_t>(e)]) {
          const FlowId g = inband_sim_flow[i];
          agents[static_cast<std::size_t>(flows.flow(g).source())]
              ->request_admission(g);
        }
      } else {
        const EpochAllocation& epoch = epochs[static_cast<std::size_t>(e)];
        for (int s = 0; s < flows.subflow_count(); ++s) {
          TagScheduler* sched =
              tag_scheds[static_cast<std::size_t>(flows.subflow(s).src)];
          if (sched != nullptr) {
            sched->note_time(sim.now());
            sched->update_share(s, epoch.subflow_share[static_cast<std::size_t>(s)]);
          }
        }
      }
      for (FlowId f = 0; f < F; ++f) {
        const FlowId prev = active_now[static_cast<std::size_t>(f)];
        const FlowId next =
            active_of[static_cast<std::size_t>(e)][static_cast<std::size_t>(f)];
        if (next == prev) continue;
        active_now[static_cast<std::size_t>(f)] = next;
        // A reroute or suspension is a disruption; a resume keeps the
        // original fault time so the recovery spans the whole outage.
        if (pending_fault_s[static_cast<std::size_t>(f)] < 0.0 &&
            (next < 0 || prev >= 0))
          pending_fault_s[static_cast<std::size_t>(f)] =
              boundaries[static_cast<std::size_t>(e)];
      }
    });
  }

  // Traffic sources at each flow's origin, gated by the activity windows.
  // Packets of a suspended flow are suppressed at the source (and counted):
  // there is no route to put them on.
  //
  // Elastic runs additionally stand up the ACK plane: every node may relay
  // returning kTransAck frames, every stack's last-hop deliveries route
  // through the plane's freshness gate, and each flow's controller hangs
  // off its provisioned path. CBR runs construct none of this — their
  // trajectory (and RNG stream) is byte-identical to pre-transport builds.
  const bool elastic = sc.transport != TransportKind::kCbr;
  TransportConfig tcfg = cfg.transport;
  tcfg.kind = sc.transport;
  std::unique_ptr<AckPlane> ack;
  if (elastic) {
    ack = std::make_unique<AckPlane>(sim, tcfg, trace, check);
    for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
      NodeStack* stack = stacks[static_cast<std::size_t>(n)].get();
      ack->register_mac(n, &stack->mac());
      stack->mac().set_transport_listener(
          [a = ack.get(), n](const Frame& fr) { a->on_ctrl_frame(n, fr); });
      // The plane keys state by *logical* flow: a repaired route variant's
      // deliveries fold onto the same cumulative-ack stream.
      stack->set_transport_sink(
          [a = ack.get(), &logical_of](const Packet& p, TimeNs now) {
            Packet q = p;
            q.flow = logical_of[static_cast<std::size_t>(p.flow)];
            return a->on_final_delivery(q, now);
          });
    }
  }
  std::vector<std::unique_ptr<TransportSource>> sources;
  for (FlowId f = 0; f < F; ++f) {
    NodeStack* stack = stacks[static_cast<std::size_t>(logical.flow(f).source())].get();
    auto emit = [stack, f, &active_now, &stats](Packet p) {
      const FlowId g = active_now[static_cast<std::size_t>(f)];
      if (g < 0) {
        stats.count_suspended(f);
        return;
      }
      stack->inject_from_source(p, g);
    };
    std::unique_ptr<TransportSource> src;
    if (!elastic) {
      src = std::make_unique<CbrTransport>(sim, cfg.cbr_pps, cfg.payload_bytes,
                                           std::move(emit), master);
    } else if (sc.transport == TransportKind::kAimd) {
      src = std::make_unique<AimdTransport>(sim, tcfg, cfg.payload_bytes,
                                            std::move(emit), master, f,
                                            logical.flow(f).source(), trace, check);
    } else {
      src = std::make_unique<BbrTransport>(sim, tcfg, cfg.payload_bytes,
                                           std::move(emit), master, f,
                                           logical.flow(f).source(), trace, check);
    }
    if (elastic) ack->add_flow(f, logical.flow(f).path, src.get());
    const FlowActivity w = window_of(f);
    const TimeNs until = std::min(horizon, from_seconds(std::min(w.stop_s, total_s)));
    TransportSource* raw = src.get();
    // A rejected arrival's source never starts (the flow offers no traffic);
    // the source object is still constructed so the RNG stream layout is
    // identical whichever way the gate decided.
    if (admitted_flag[static_cast<std::size_t>(f)])
      sim.schedule_at(from_seconds(std::min(w.start_s, total_s)),
                      [raw, until] { raw->start(until); });
    sources.push_back(std::move(src));
  }

  // ---- Re-convergence probe (in-band protocol, multi-epoch runs): poll the
  // applied lane shares on a fixed grid and record, per epoch, how long the
  // network took to bring every active lane within 10% + 0.02 of the epoch's
  // oracle target. Pure reads — the probe never perturbs the trajectory. ----
  std::vector<double> reconv(static_cast<std::size_t>(E), -1.0);
  std::function<void()> reconv_sample;
  if (dctrl && E > 1) {
    const TimeNs reconv_period = from_seconds(0.1);
    reconv_sample = [&, reconv_period, horizon] {
      const double now_s = to_seconds(sim.now());
      auto it = std::upper_bound(boundaries.begin(), boundaries.end(),
                                 now_s + 1e-12);
      const std::size_t e = static_cast<std::size_t>(it - boundaries.begin()) - 1;
      if (reconv[e] < 0.0) {
        bool converged = true;
        for (FlowId g : epoch_active_flows[e]) {
          for (int h = 0; converged && h < flows.flow(g).length(); ++h) {
            const int s = flows.subflow_index(g, h);
            const TagScheduler* sched =
                tag_scheds[static_cast<std::size_t>(flows.subflow(s).src)];
            const double target =
                epochs[e].subflow_share[static_cast<std::size_t>(s)];
            const double applied = sched != nullptr ? sched->share_of(s) : 0.0;
            if (std::abs(applied - target) > 0.10 * target + 0.02)
              converged = false;
          }
          if (!converged) break;
        }
        if (converged) {
          reconv[e] = now_s - boundaries[e];
          if (trace != nullptr)
            trace->record<TraceCat::kCtrl>(
                sim.now(), TraceEvent::kCtrlReconv, -1,
                static_cast<std::int32_t>(e), -1, reconv[e], boundaries[e]);
        }
      }
      if (sim.now() + reconv_period <= horizon)
        sim.schedule_in(reconv_period, reconv_sample);
    };
    sim.schedule_at(reconv_period, reconv_sample);
  }

  // Optional short-term fairness sampling: snapshot per-flow end-to-end
  // deliveries at fixed intervals and report the deltas. All sampler state
  // lives at function scope: the scheduled events reference it while
  // run_until executes below.
  std::vector<std::vector<std::int64_t>> windows;
  std::vector<std::int64_t> window_prev(static_cast<std::size_t>(F), 0);
  std::function<void()> sample;
  if (cfg.sample_interval_seconds > 0.0) {
    const TimeNs interval = from_seconds(cfg.sample_interval_seconds);
    E2EFA_ASSERT(interval > 0);
    sample = [&sim, &logical_e2e, &windows, &window_prev, &sample, interval, horizon,
              F] {
      std::vector<std::int64_t> now(static_cast<std::size_t>(F));
      for (FlowId f = 0; f < F; ++f) {
        const std::int64_t total = logical_e2e(f);
        now[static_cast<std::size_t>(f)] = total - window_prev[static_cast<std::size_t>(f)];
        window_prev[static_cast<std::size_t>(f)] = total;
      }
      windows.push_back(std::move(now));
      if (sim.now() + interval <= horizon) sim.schedule_in(interval, sample);
    };
    sim.schedule_at(from_seconds(cfg.warmup_seconds) + interval, sample);
  }

  // ---- Metrics registry + periodic sampler (enabled by metrics_period).
  // Components expose their live counters by address; the registry is only
  // read at sample instants, so runs without metrics pay nothing and runs
  // with metrics stay bit-identical (sampling never mutates sim state). ----
  MetricsRegistry registry;
  MetricsTimeSeries metrics_ts;
  std::vector<std::int64_t> metrics_prev_e2e(static_cast<std::size_t>(F), 0);
  double metrics_prev_timeouts = 0.0, metrics_prev_attempts = 0.0;
  double metrics_prev_airtime = 0.0, metrics_prev_ctrl_bytes = 0.0;
  double metrics_prev_retransmits = 0.0, metrics_prev_seq_gaps = 0.0;
  std::function<void()> metrics_sample;
  if (cfg.metrics_period_seconds > 0.0) {
    metrics_ts.period_s = cfg.metrics_period_seconds;
    const ChannelStats& ch = channel.stats();
    registry.add_counter("frames_transmitted", -1, -1, &ch.frames_transmitted);
    registry.add_counter("frames_delivered", -1, -1, &ch.frames_delivered);
    registry.add_counter("frames_corrupted", -1, -1, &ch.frames_corrupted);
    registry.add_counter("frames_faulted_dead", -1, -1, &ch.faulted_dead);
    registry.add_counter("frames_faulted_loss", -1, -1, &ch.faulted_loss);
    registry.add_counter("airtime_ns", -1, -1, &ch.airtime_ns);
    for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
      const NodeStack* stack = stacks[static_cast<std::size_t>(n)].get();
      const DcfMac::Stats& ms = stack->mac().stats();
      const std::int16_t node = static_cast<std::int16_t>(n);
      registry.add_counter("mac_rts_sent", node, -1, &ms.rts_sent);
      registry.add_counter("mac_data_sent", node, -1, &ms.data_sent);
      registry.add_counter("mac_timeouts", node, -1, &ms.timeouts);
      registry.add_counter("mac_retry_drops", node, -1, &ms.retry_drops);
      registry.add_gauge("queue_depth", node, -1, [stack] {
        return static_cast<double>(stack->backlog());
      });
      TagScheduler* sched = tag_scheds[static_cast<std::size_t>(n)];
      if (sched != nullptr)
        registry.add_gauge("virtual_clock", node, -1,
                           [sched] { return sched->virtual_clock(); });
    }
    for (int s = 0; s < flows.subflow_count(); ++s) {
      const SubflowCounters& c = stats.subflow(s);
      registry.add_counter("subflow_delivered",
                           static_cast<std::int16_t>(flows.subflow(s).src), s,
                           &c.delivered);
      registry.add_counter("subflow_dropped_queue",
                           static_cast<std::int16_t>(flows.subflow(s).src), s,
                           &c.dropped_queue);
    }
    if (dctrl)
      for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
        const CtrlAgentStats& as = agents[static_cast<std::size_t>(n)]->stats();
        const std::int16_t node = static_cast<std::int16_t>(n);
        registry.add_counter("ctrl_bytes", node, -1, &as.ctrl_bytes_sent);
        registry.add_counter("ctrl_retransmits", node, -1, &as.retransmits);
        registry.add_counter("ctrl_seq_gaps", node, -1, &as.seq_gaps);
      }

    // Targets of the epoch in force at time t_s, folded onto logical flows.
    auto targets_at = [&](double t_s) {
      auto it = std::upper_bound(boundaries.begin(), boundaries.end(), t_s + 1e-12);
      const std::size_t e = static_cast<std::size_t>(it - boundaries.begin()) - 1;
      std::vector<double> tg(static_cast<std::size_t>(F), 0.0);
      if (!epochs[e].has_target) return tg;
      for (FlowId f = 0; f < F; ++f) {
        const FlowId g = active_of[e][static_cast<std::size_t>(f)];
        if (g >= 0)
          tg[static_cast<std::size_t>(f)] =
              epochs[e].flow_share[static_cast<std::size_t>(g)];
      }
      return tg;
    };

    const TimeNs period = from_seconds(cfg.metrics_period_seconds);
    E2EFA_ASSERT(period > 0);
    const double period_s = cfg.metrics_period_seconds;
    metrics_sample = [&, period, period_s, horizon] {
      MetricsSample samp;
      samp.t_s = to_seconds(sim.now());
      std::vector<double> share(static_cast<std::size_t>(F), 0.0);
      for (FlowId f = 0; f < F; ++f) {
        const std::int64_t total = logical_e2e(f);
        const std::int64_t delta = total - metrics_prev_e2e[static_cast<std::size_t>(f)];
        metrics_prev_e2e[static_cast<std::size_t>(f)] = total;
        samp.flow_goodput_pps.push_back(static_cast<double>(delta) / period_s);
        share[static_cast<std::size_t>(f)] =
            static_cast<double>(delta) * 8.0 * cfg.payload_bytes /
            (period_s * static_cast<double>(cfg.channel_bps));
      }
      // Share-normalized fairness against the epoch targets in force at the
      // window midpoint; raw rates when there is no allocation (802.11).
      const std::vector<double> tg = targets_at(samp.t_s - 0.5 * period_s);
      const std::vector<double> normalized = normalized_by(share, tg);
      samp.jain = normalized.empty() ? jain_fairness_index(samp.flow_goodput_pps)
                                     : jain_fairness_index(normalized);
      const std::vector<double> depths = registry.values("queue_depth");
      samp.queue_depth_p50 = percentile(depths, 50.0);
      samp.queue_depth_p95 = percentile(depths, 95.0);
      samp.queue_depth_max = percentile(depths, 100.0);
      const double timeouts = registry.sum("mac_timeouts");
      const double attempts = registry.sum("mac_rts_sent") +
                              registry.sum("mac_data_sent");
      const double d_timeouts = timeouts - metrics_prev_timeouts;
      const double d_attempts = attempts - metrics_prev_attempts;
      metrics_prev_timeouts = timeouts;
      metrics_prev_attempts = attempts;
      samp.mac_retry_rate = d_attempts > 0.0 ? d_timeouts / d_attempts : 0.0;
      const double airtime = registry.sum("airtime_ns");
      samp.channel_utilization =
          (airtime - metrics_prev_airtime) / static_cast<double>(period);
      metrics_prev_airtime = airtime;
      if (dctrl) {
        const double cbytes = registry.sum("ctrl_bytes");
        samp.ctrl_bytes = cbytes - metrics_prev_ctrl_bytes;
        metrics_prev_ctrl_bytes = cbytes;
        const double data_bytes = registry.sum("mac_data_sent") *
                                  static_cast<double>(cfg.payload_bytes);
        samp.ctrl_overhead = data_bytes > 0.0 ? cbytes / data_bytes : 0.0;
        const double retx = registry.sum("ctrl_retransmits");
        samp.ctrl_retransmits = retx - metrics_prev_retransmits;
        metrics_prev_retransmits = retx;
        const double gaps = registry.sum("ctrl_seq_gaps");
        samp.ctrl_seq_gaps = gaps - metrics_prev_seq_gaps;
        metrics_prev_seq_gaps = gaps;
      }
      if (elastic) {
        for (FlowId f = 0; f < F; ++f) {
          const TransportTelemetry tel =
              sources[static_cast<std::size_t>(f)]->telemetry();
          samp.flow_cwnd.push_back(tel.cwnd);
          samp.flow_srtt_s.push_back(tel.srtt_s);
          samp.flow_delivery_pps.push_back(tel.delivery_rate_pps);
        }
      }
      metrics_ts.samples.push_back(std::move(samp));
      if (sim.now() + period <= horizon) sim.schedule_in(period, metrics_sample);
    };
    sim.schedule_at(period, metrics_sample);
  }

  setup_prof.reset();  // everything below run_until accrues to the sim phase
  {
    Profiler::Scope prof(cfg.profile, Profiler::Phase::kSim);
    sim.run_until(horizon);
  }
  if (multi) snapshot_epoch();  // close the final epoch

  // Close the conservation ledger against what is still buffered.
  if (check != nullptr) {
    std::vector<int> backlog;
    backlog.reserve(stacks.size());
    for (const auto& stack : stacks) backlog.push_back(stack->backlog());
    check->finalize(backlog, sim.now());
  }

  // ---- Collect. Per-flow figures aggregate every route variant back onto
  // the scenario flow; per-subflow figures stay at sim granularity (their
  // logical prefix matches the scenario's own subflows). ----
  out.delivered_per_subflow.resize(static_cast<std::size_t>(flows.subflow_count()));
  for (int s = 0; s < flows.subflow_count(); ++s)
    out.delivered_per_subflow[static_cast<std::size_t>(s)] = stats.subflow(s).delivered;
  out.end_to_end_per_flow.resize(static_cast<std::size_t>(F));
  for (FlowId f = 0; f < F; ++f)
    out.end_to_end_per_flow[static_cast<std::size_t>(f)] = logical_e2e(f);
  out.total_end_to_end = stats.total_end_to_end();
  for (int s = 0; s < flows.subflow_count(); ++s) {
    out.dropped_queue += stats.subflow(s).dropped_queue;
    out.dropped_mac += stats.subflow(s).dropped_mac;
  }
  out.lost_packets = stats.total_lost();
  out.loss_ratio = stats.loss_ratio();
  out.channel = channel.stats();
  out.mean_delay_s.resize(static_cast<std::size_t>(F));
  out.max_delay_s.resize(static_cast<std::size_t>(F));
  for (FlowId f = 0; f < F; ++f) {
    const auto& vs = sim_flow_of[static_cast<std::size_t>(f)];
    if (vs.size() == 1) {
      out.mean_delay_s[static_cast<std::size_t>(f)] = stats.delay(f).mean();
      out.max_delay_s[static_cast<std::size_t>(f)] = stats.delay(f).max();
      continue;
    }
    double sum = 0.0, mx = 0.0;
    std::int64_t n = 0;
    for (FlowId g : vs) {
      const RunningStat& d = stats.delay(g);
      sum += d.sum();
      n += d.count();
      mx = std::max(mx, d.max());
    }
    out.mean_delay_s[static_cast<std::size_t>(f)] = n > 0 ? sum / static_cast<double>(n) : 0.0;
    out.max_delay_s[static_cast<std::size_t>(f)] = mx;
  }
  out.window_end_to_end = std::move(windows);
  out.suspended_per_flow.resize(static_cast<std::size_t>(F));
  for (FlowId f = 0; f < F; ++f) {
    out.suspended_per_flow[static_cast<std::size_t>(f)] = stats.suspended(f);
    out.suspended_packets += stats.suspended(f);
  }
  out.link_failures = link_failures;
  out.events_processed = sim.events_processed();
  if (elastic) {
    out.transport.acks_sent = ack->acks_sent();
    out.transport.acks_relayed = ack->acks_relayed();
    out.transport.acks_delivered = ack->acks_delivered();
    for (FlowId f = 0; f < F; ++f)
      out.transport.flows.push_back(
          sources[static_cast<std::size_t>(f)]->telemetry());
  }
  out.epoch_end_to_end = std::move(epoch_e2e);
  out.recoveries = std::move(recoveries);
  out.metrics = std::move(metrics_ts);
  if (dctrl) {
    for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
      const CtrlAgentStats& as = agents[static_cast<std::size_t>(n)]->stats();
      out.ctrl.hello_sent += as.hello_sent;
      out.ctrl.constraint_sent += as.constraint_sent;
      out.ctrl.rate_sent += as.rate_sent;
      out.ctrl.msgs_received += as.msgs_received;
      out.ctrl.solves += as.solves;
      out.ctrl.ctrl_bytes += as.ctrl_bytes_sent;
      out.ctrl.admit_req_sent += as.admit_req_sent;
      out.ctrl.admit_rsp_sent += as.admit_rsp_sent;
      out.ctrl.retransmits += as.retransmits;
      out.ctrl.seq_gaps += as.seq_gaps;
      out.ctrl.stale_dropped += as.stale_dropped;
      out.ctrl.forced_solves += as.forced_solves;
      out.ctrl.ctrl_frames +=
          stacks[static_cast<std::size_t>(n)]->mac().stats().ctrl_sent;
    }
    for (std::size_t i = 0; i < out.admissions.size(); ++i) {
      const FlowId g = inband_sim_flow[i];
      if (g < 0) continue;
      out.admissions[i].inband =
          agents[static_cast<std::size_t>(flows.flow(g).source())]
              ->inband_admission(g);
    }
    if (E > 1) {
      out.reconv_s = std::move(reconv);
      // Surface the per-epoch samples in the metrics artifact as well, so a
      // JSONL dump carries the control-plane health story on its own.
      if (cfg.metrics_period_seconds > 0.0) out.metrics.reconv_s = out.reconv_s;
    }
    out.ctrl.applied_subflow_share.resize(
        static_cast<std::size_t>(flows.subflow_count()));
    for (int s = 0; s < flows.subflow_count(); ++s) {
      TagScheduler* sched = tag_scheds[static_cast<std::size_t>(flows.subflow(s).src)];
      out.ctrl.applied_subflow_share[static_cast<std::size_t>(s)] =
          sched != nullptr ? sched->share_of(s) : 0.0;
    }
  }
  return out;
}

}  // namespace e2efa
