// Random-waypoint mobility compiled into the fault schedule.
//
// The simulator's PHY has no notion of moving radios: connectivity is the
// home Topology masked by a TopologyMask, and masks can only be switched at
// precomputed fault-epoch boundaries. Mobility therefore runs entirely at
// setup time: each MobilitySpec's random-waypoint walk is sampled on a fixed
// grid of instants, and whenever a walking node drifts out of (or back into)
// transmission range of a home-topology neighbor, a link_down / link_up
// FaultEvent is appended to the plan. The runner then treats those events
// exactly like scripted link faults — masked route repair, per-epoch
// re-solve, in-band re-convergence — so the whole machinery built for faults
// carries mobility for free, and runs stay bit-reproducible: the walk is
// seeded per spec (MobilitySpec::seed), independent of the run seed.
//
// The model is deliberately conservative: contention geometry (interference
// range, clique structure) stays that of the home positions; movement only
// modulates which home links are usable. Link flapping at the range boundary
// is damped with hysteresis — a link drops when the pair separates beyond
// tx_range and returns only once they close within kRejoinFraction of it.
#pragma once

#include <vector>

#include "net/faults.hpp"
#include "net/scenarios.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// Walk sampling period (seconds). Epoch boundaries land on multiples of it.
inline constexpr double kMobilityStepS = 0.25;

/// Hysteresis: a dropped link re-forms only when the pair closes within this
/// fraction of tx_range (drop threshold is tx_range itself).
inline constexpr double kRejoinFraction = 0.9;

/// Validates the specs against the topology: throws ContractViolation on an
/// out-of-range node, a duplicated node, speed <= 0, or pause < 0.
void validate_mobility(const std::vector<MobilitySpec>& specs,
                       const Topology& topo);

/// Samples every spec's random-waypoint walk over [0, horizon_s] (arena =
/// bounding box of the home positions) and appends link_down / link_up
/// events for home-topology links whose endpoints drift out of / back into
/// range. Deterministic in (specs, topo, horizon_s) alone. Calls
/// validate_mobility first; a no-spec call leaves `plan` untouched.
void compile_mobility(const Topology& topo,
                      const std::vector<MobilitySpec>& specs, double horizon_s,
                      FaultPlan& plan);

}  // namespace e2efa
