// Text scenario files: define your own topology and flows for e2efa-sim.
//
// Line-oriented format (comments with '#', blank lines ignored):
//
//   range 250               # transmission range in meters (default 250)
//   irange 250              # interference range (default = range)
//   node A 0 0              # label, x, y (meters)
//   node B 200 0
//   node C 400 0
//   flow A C                # min-hop routed flow, weight 1
//   flow C A weight 2.5     # optional weight
//   flow A B C              # or an explicit multi-node path
//
// Fault injection (all optional; times in seconds from simulation start):
//
//   fault node B 10         # node B crashes at t = 10
//   recover node B 30       # ... and comes back at t = 30
//   fault link A B 15       # link A<->B fades out at t = 15
//   recover link A B 25
//   loss A B 0.05           # link A<->B loses 5% of clean receptions
//   loss default 0.01       # every other link loses 1%
//
// Open-loop churn and mobility (all optional):
//
//   flow_arrive 1 5         # flow #1 (0-based, in file order) starts at t=5
//   flow_depart 1 20        # ... and leaves at t = 20
//   mobility C speed 3      # node C random-waypoint walks at 3 m/s
//   mobility D speed 1.5 pause 2 seed 7
//
// Node labels are arbitrary tokens without whitespace; flows may mix
// routed (2 endpoints) and explicit-path (>= 3 nodes) forms. Flows with an
// explicit `weight` suffix apply it to either form. Fault, churn and
// mobility directives may reference nodes/flows defined later in the file;
// all labels are resolved after the whole file is read. The parser rejects
// (with line-numbered errors) directives naming unknown nodes or
// out-of-range flow ordinals, duplicate arrive/depart/mobility directives
// for one target, a departure at or before the flow's arrival, and
// fault/recover times that go backwards for the same node or link.
#pragma once

#include <string>

#include "net/scenarios.hpp"

namespace e2efa {

/// Parses scenario text; throws ContractViolation with a line-numbered
/// message on malformed input.
Scenario parse_scenario_text(const std::string& text, std::string name = "file");

/// Loads and parses a scenario file from disk.
Scenario load_scenario_file(const std::string& path);

/// Serializes a scenario back to the text format above, such that
/// parse_scenario_text(serialize_scenario_text(sc)) reproduces the same
/// topology, flows (multi-hop paths are written explicitly, so routing ties
/// cannot change them), fault schedule, and loss rules. Values are printed
/// with round-trip precision. Node labels must be whitespace-free tokens
/// (the default numeric labels always are).
std::string serialize_scenario_text(const Scenario& sc);

}  // namespace e2efa
