// Text scenario files: define your own topology and flows for e2efa-sim.
//
// Line-oriented format (comments with '#', blank lines ignored):
//
//   range 250               # transmission range in meters (default 250)
//   irange 250              # interference range (default = range)
//   node A 0 0              # label, x, y (meters)
//   node B 200 0
//   node C 400 0
//   flow A C                # min-hop routed flow, weight 1
//   flow C A weight 2.5     # optional weight
//   flow A B C              # or an explicit multi-node path
//
// Fault injection (all optional; times in seconds from simulation start):
//
//   fault node B 10         # node B crashes at t = 10
//   recover node B 30       # ... and comes back at t = 30
//   fault link A B 15       # link A<->B fades out at t = 15
//   recover link A B 25
//   loss A B 0.05           # link A<->B loses 5% of clean receptions
//   loss default 0.01       # every other link loses 1%
//
// Node labels are arbitrary tokens without whitespace; flows may mix
// routed (2 endpoints) and explicit-path (>= 3 nodes) forms. Flows with an
// explicit `weight` suffix apply it to either form. Fault directives may
// reference nodes defined later in the file; all labels are resolved after
// the whole file is read.
#pragma once

#include <string>

#include "net/scenarios.hpp"

namespace e2efa {

/// Parses scenario text; throws ContractViolation with a line-numbered
/// message on malformed input.
Scenario parse_scenario_text(const std::string& text, std::string name = "file");

/// Loads and parses a scenario file from disk.
Scenario load_scenario_file(const std::string& path);

/// Serializes a scenario back to the text format above, such that
/// parse_scenario_text(serialize_scenario_text(sc)) reproduces the same
/// topology, flows (multi-hop paths are written explicitly, so routing ties
/// cannot change them), fault schedule, and loss rules. Values are printed
/// with round-trip precision. Node labels must be whitespace-free tokens
/// (the default numeric labels always are).
std::string serialize_scenario_text(const Scenario& sc);

}  // namespace e2efa
