// The paper's evaluation topologies and analytic examples.
//
// scenario1(): Fig. 1 — two 2-hop flows, F1: A→B→C and F2: D→E→F, where
//   F1.2 contends with both hops of F2 but F1.1 contends with neither.
// scenario2(): Fig. 6 / Tables I & III — five flows over 14 nodes:
//   F1: A→B→C→D→E (4 hops), F2: F→G, F3: H→I, F4: J→K→L, F5: M→N, wired so
//   the maximal cliques are exactly the paper's Ω1..Ω6.
// fig4_example(), pentagon_example(): analytic contention graphs the paper
//   gives directly (no geometry), realized over far-apart chains with
//   explicit contention edges.
//
// NOTE: a Scenario owns its Topology; construct the FlowSet against the
// Scenario's own `topo` member and keep the Scenario alive (and unmoved)
// while the FlowSet is in use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "contention/contention_graph.hpp"
#include "flow/flow.hpp"
#include "net/faults.hpp"
#include "topology/topology.hpp"
#include "transport/transport.hpp"

namespace e2efa {

/// Stop time meaning "the flow never departs" (FlowActivity default).
inline constexpr double kFlowNeverStops = 1e300;

/// Activity window of one flow in a dynamic run (seconds from sim start;
/// the flow sources packets during [start_s, stop_s)). A flow with
/// start_s > 0 is an *arrival* and passes through admission control under
/// the allocating protocols (src/ctrl/admission.*).
struct FlowActivity {
  double start_s = 0.0;
  double stop_s = kFlowNeverStops;
  bool operator==(const FlowActivity&) const = default;
};

/// True when every window is the default always-on one (such a vector is
/// semantically identical to no activity schedule at all; parsers and
/// serializers normalize it away so round-trips stay byte-stable).
bool all_default_activity(const std::vector<FlowActivity>& activity);

/// Random-waypoint mobility of one node. The walk is compiled into
/// link-down/link-up FaultEvents against the *home* topology before the run
/// (src/net/mobility.*): movement modulates which home links are usable,
/// while contention geometry stays that of the home positions.
struct MobilitySpec {
  NodeId node = kInvalidNode;
  double speed_mps = 1.0;  ///< Waypoint-to-waypoint speed, meters/second.
  double pause_s = 0.0;    ///< Dwell time at each waypoint, seconds.
  std::uint64_t seed = 0;  ///< Per-spec trajectory stream (independent of
                           ///< the run seed: reruns share the trajectory).
  bool operator==(const MobilitySpec&) const = default;
};

/// A named topology plus flow specifications (paths and weights), an
/// optional fault schedule (default: no faults, lossless links), an
/// optional per-flow activity schedule (default: every flow always on),
/// and an optional set of mobile nodes.
struct Scenario {
  std::string name;
  Topology topo;
  std::vector<Flow> flow_specs;
  FaultPlan faults;
  /// Empty (default) = all flows active for the whole run; otherwise one
  /// window per flow (run_scenario validates the size).
  std::vector<FlowActivity> activity;
  /// Random-waypoint mobility specs, at most one per node.
  std::vector<MobilitySpec> mobility;
  /// Source model for every flow: open-loop CBR (default, the paper's
  /// workload) or a closed-loop elastic transport (AIMD / BBR-style).
  TransportKind transport = TransportKind::kCbr;
};

/// Fig. 1: the motivating two-flow topology.
Scenario scenario1();

/// Fig. 6: the five-flow topology of Table I / Table III.
Scenario scenario2();

/// An analytic example: flows with the given hop counts and weights laid
/// out as mutually far-apart chains (no geometric contention between
/// flows); pair with ContentionGraph's explicit-edge constructor.
Scenario make_abstract_scenario(const std::vector<int>& hop_counts,
                                const std::vector<double>& weights,
                                std::string name = "abstract");

/// Fig. 4 weighted contention-graph example. Returns the scenario plus the
/// explicit contention edges (over global subflow indices) the paper draws.
struct AbstractExample {
  Scenario scenario;
  std::vector<std::pair<int, int>> edges;
};
AbstractExample fig4_example();

/// Fig. 5 pentagon: five single-hop unit-weight flows in a contention ring.
AbstractExample pentagon_example();

}  // namespace e2efa
