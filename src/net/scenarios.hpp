// The paper's evaluation topologies and analytic examples.
//
// scenario1(): Fig. 1 — two 2-hop flows, F1: A→B→C and F2: D→E→F, where
//   F1.2 contends with both hops of F2 but F1.1 contends with neither.
// scenario2(): Fig. 6 / Tables I & III — five flows over 14 nodes:
//   F1: A→B→C→D→E (4 hops), F2: F→G, F3: H→I, F4: J→K→L, F5: M→N, wired so
//   the maximal cliques are exactly the paper's Ω1..Ω6.
// fig4_example(), pentagon_example(): analytic contention graphs the paper
//   gives directly (no geometry), realized over far-apart chains with
//   explicit contention edges.
//
// NOTE: a Scenario owns its Topology; construct the FlowSet against the
// Scenario's own `topo` member and keep the Scenario alive (and unmoved)
// while the FlowSet is in use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "contention/contention_graph.hpp"
#include "flow/flow.hpp"
#include "net/faults.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// A named topology plus flow specifications (paths and weights) and an
/// optional fault schedule (default: no faults, lossless links).
struct Scenario {
  std::string name;
  Topology topo;
  std::vector<Flow> flow_specs;
  FaultPlan faults;
};

/// Fig. 1: the motivating two-flow topology.
Scenario scenario1();

/// Fig. 6: the five-flow topology of Table I / Table III.
Scenario scenario2();

/// An analytic example: flows with the given hop counts and weights laid
/// out as mutually far-apart chains (no geometric contention between
/// flows); pair with ContentionGraph's explicit-edge constructor.
Scenario make_abstract_scenario(const std::vector<int>& hop_counts,
                                const std::vector<double>& weights,
                                std::string name = "abstract");

/// Fig. 4 weighted contention-graph example. Returns the scenario plus the
/// explicit contention edges (over global subflow indices) the paper draws.
struct AbstractExample {
  Scenario scenario;
  std::vector<std::pair<int, int>> edges;
};
AbstractExample fig4_example();

/// Fig. 5 pentagon: five single-hop unit-weight flows in a contention ring.
AbstractExample pentagon_example();

}  // namespace e2efa
