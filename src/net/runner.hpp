// End-to-end scenario runner: phase 1 (allocation) + phase 2 (packet-level
// simulation) for one of the four protocols the paper evaluates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocation.hpp"
#include "ctrl/agent.hpp"
#include "lp/simplex.hpp"
#include "mac/dcf_mac.hpp"
#include "net/scenarios.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "phy/channel.hpp"
#include "traffic/stats.hpp"
#include "transport/transport.hpp"

namespace e2efa {

enum class Protocol {
  k80211,            ///< Plain IEEE 802.11 DCF, single FIFO per node.
  kTwoTier,          ///< Two-tier [1]: per-subflow LP shares + tag scheduler.
  kTwoTierBalanced,  ///< Two-tier variant: per-subflow *max-min* shares —
                     ///< models the near-equal services [1]'s scheduler
                     ///< actually measured in the paper's Table II.
  k2paCentralized,   ///< 2PA, phase 1 solved centrally (Sec. IV-A).
  k2paDistributed,   ///< 2PA, phase 1 solved distributedly (Sec. IV-B).
  kMaxMin,           ///< Flow-level weighted max-min (footnote-3 extension).
  k2paStaticCw,      ///< Ablation: 2PA phase-1 shares + intra-node weighted
                     ///< queueing, but a static 1/node-share contention
                     ///< window instead of the tag/backoff feedback loop.
  k2paDistributedCtrl,  ///< 2PA, phase 1 run *in-band* by per-node AllocAgents
                        ///< over real control frames (src/ctrl): no oracle
                        ///< pushes shares; the network converges on its own,
                        ///< and re-converges after faults the same way.
};

const char* to_string(Protocol p);

struct SimConfig {
  std::int64_t channel_bps = 2'000'000;  ///< Paper: 2 Mbps.
  int payload_bytes = 512;               ///< Paper: 512-byte packets.
  double cbr_pps = 200.0;                ///< Paper: 200 packets/s per flow.
  double sim_seconds = 1000.0;           ///< Paper: T = 1000 s.
  int queue_capacity = 50;               ///< Per transmit queue (ns-2 default).
  int cw_min = 31;                       ///< Paper: CW_min = 31.
  int cw_max = 1023;
  int retry_limit = 7;
  double alpha = 1e-4;                   ///< Paper: α = 0.0001.
  std::uint64_t seed = 1;
  /// Measurements start after this transient (simulated seconds); the run
  /// lasts warmup + sim_seconds in total.
  double warmup_seconds = 0.0;
  /// When > 0, sample per-flow end-to-end deliveries every this many
  /// simulated seconds (fills RunResult::window_end_to_end) — used to study
  /// short-term fairness (the α knob's purpose).
  double sample_interval_seconds = 0.0;
  /// False switches the MAC to basic access (no RTS/CTS): hidden terminals
  /// then collide on whole DATA frames. The paper always uses RTS/CTS.
  bool use_rts_cts = true;
  /// Structured-event trace sink (src/obs/trace.hpp). Null (default)
  /// disables tracing entirely — components pay one pointer test per
  /// would-be event and the trajectory is bit-identical to a run without
  /// the sink. Not owned; not thread-safe: leave null when the same config
  /// fans out across BatchRunner threads.
  TraceSink* trace = nullptr;
  /// When > 0, sample the metrics registry every this many simulated
  /// seconds into RunResult::metrics (windowed goodput, share-normalized
  /// Jain index, queue-depth percentiles, MAC retry rate, channel
  /// utilization). 0 (default) disables the registry and sampler entirely.
  double metrics_period_seconds = 0.0;
  /// In-band control plane tuning (k2paDistributedCtrl only; ignored by
  /// every other protocol).
  CtrlConfig ctrl;
  /// Invariant-check observer (src/check/check.hpp). Null (default)
  /// disables all oracles; like the trace sink, an installed observer never
  /// mutates sim state or draws randomness, so checked runs are
  /// bit-identical to unchecked ones. Not owned; not thread-safe across
  /// BatchRunner threads. The runner calls begin_run and finalize itself.
  CheckContext* check = nullptr;
  /// Self-profiler (src/obs/profiler.hpp). Null (default) disables phase
  /// accounting; an armed profiler only reads the wall clock and atomic
  /// counters, so the trajectory stays bit-identical. Not owned. Unlike
  /// the trace/check observers it IS thread-safe: one profiler may be
  /// shared across a BatchRunner fan-out and aggregates over all runs.
  Profiler* profile = nullptr;
  /// Elastic-transport tuning (used when Scenario::transport != kCbr; the
  /// `kind` member is ignored — the scenario decides the source model).
  TransportConfig transport;
};

struct RunResult {
  Protocol protocol = Protocol::k80211;
  double sim_seconds = 0.0;

  // Measured (packets over the whole run).
  std::vector<std::int64_t> delivered_per_subflow;  ///< r_{i.j} · T
  std::vector<std::int64_t> end_to_end_per_flow;    ///< r̂_i · T
  std::int64_t total_end_to_end = 0;                ///< Σ r̂_i · T
  /// In-network losses (the paper's "lost packets"; see TrafficStats).
  std::int64_t lost_packets = 0;
  /// Diagnostics: all drop-tail and retry-limit drops, incl. source-side.
  std::int64_t dropped_queue = 0;
  std::int64_t dropped_mac = 0;
  double loss_ratio = 0.0;  ///< lost / total end-to-end (paper's metric).

  // Phase-1 targets (empty for plain 802.11).
  bool has_target = false;
  std::vector<double> target_subflow_share;
  std::vector<double> target_flow_share;

  ChannelStats channel;

  /// Mean / maximum end-to-end delay per flow (seconds; 0 when the flow
  /// delivered nothing inside the measurement window).
  std::vector<double> mean_delay_s;
  std::vector<double> max_delay_s;

  /// Per-sample-window end-to-end deliveries: window_end_to_end[w][f] =
  /// packets flow f completed during window w. Empty unless
  /// SimConfig::sample_interval_seconds > 0.
  std::vector<std::vector<std::int64_t>> window_end_to_end;

  /// Multi-epoch runs (dynamic flow sets and/or fault plans): epoch start
  /// times (seconds) and the per-epoch re-computed flow shares (0 for flows
  /// inactive or suspended in that epoch). Indexed by *scenario* flow.
  std::vector<double> epoch_starts_s;
  std::vector<std::vector<double>> epoch_flow_share;

  /// Phase-1 solver status of every epoch's solve, in epoch order (empty
  /// for plain 802.11, which solves nothing; kOptimal for epochs with no
  /// active flows). A solve that comes back infeasible/unbounded — or whose
  /// basic-share floors had to be relaxed, for the centralized family —
  /// throws ContractViolation instead of completing the run, so surfaced
  /// entries are an audit trail of successful solves.
  std::vector<LpStatus> epoch_lp_status;

  // ---- Fault injection (populated when the scenario has a FaultPlan). ----
  /// Source packets suppressed per flow while the flow was suspended
  /// (destination unreachable on the surviving topology).
  std::vector<std::int64_t> suspended_per_flow;
  std::int64_t suspended_packets = 0;  ///< Σ suspended_per_flow.
  /// Link-layer delivery failures: MAC retry-limit drops over the whole run
  /// (warm-up included) — the upstream failure signal route repair keys off.
  std::int64_t link_failures = 0;
  /// Per-epoch end-to-end deliveries: epoch_end_to_end[e][f] = packets
  /// scenario-flow f completed during epoch e (measurement window only).
  /// Filled for multi-epoch runs; empty otherwise.
  std::vector<std::vector<std::int64_t>> epoch_end_to_end;
  /// One record per healed disruption: the flow was disrupted (rerouted or
  /// suspended) at fault_s and completed its first post-repair delivery on
  /// the then-current route at recovered_s.
  struct Recovery {
    FlowId flow = -1;
    double fault_s = 0.0;
    double recovered_s = 0.0;
    bool operator==(const Recovery&) const = default;
  };
  std::vector<Recovery> recoveries;

  /// Periodic metrics samples (empty unless
  /// SimConfig::metrics_period_seconds > 0). Sampled from simulation state
  /// at deterministic instants: identical across reruns and BatchRunner
  /// thread counts for a fixed seed.
  MetricsTimeSeries metrics;

  /// In-band control plane summary (k2paDistributedCtrl only; all-zero /
  /// empty otherwise). The counters aggregate every node's AllocAgent; the
  /// applied shares are what actually sits in the TagSchedulers when the
  /// run ends — i.e. the state the network converged to, as opposed to the
  /// oracle targets in target_subflow_share / epoch_flow_share.
  struct CtrlSummary {
    std::uint64_t hello_sent = 0;       ///< Queued HELLO broadcasts.
    std::uint64_t constraint_sent = 0;  ///< Queued CONSTRAINT messages.
    std::uint64_t rate_sent = 0;        ///< Queued RATE messages.
    std::uint64_t msgs_received = 0;    ///< Decoded control payloads.
    std::uint64_t solves = 0;           ///< Source-local LP solves.
    std::uint64_t ctrl_bytes = 0;       ///< Wire bytes of queued dedicated frames.
    std::uint64_t ctrl_frames = 0;      ///< kCtrl frames actually transmitted.
    // Hardened-mode counters (all zero unless CtrlConfig::hardened — i.e.
    // unless the scenario has faults, churn, or mobility).
    std::uint64_t admit_req_sent = 0;   ///< Queued ADMIT_REQ messages.
    std::uint64_t admit_rsp_sent = 0;   ///< Queued ADMIT_RSP messages.
    std::uint64_t retransmits = 0;      ///< CONSTRAINT/RATE resends (no ack).
    std::uint64_t seq_gaps = 0;         ///< HELLO sequence gaps detected.
    std::uint64_t stale_dropped = 0;    ///< Msgs dropped for a stale epoch gen.
    std::uint64_t forced_solves = 0;    ///< Degraded solves (quiescence never
                                        ///< reached within max_staleness_s).
    std::vector<double> applied_subflow_share;  ///< Final lane shares (sim ids).
    bool operator==(const CtrlSummary&) const = default;
  };
  CtrlSummary ctrl;

  /// One record per admission-controlled flow arrival (activity window with
  /// start_s > 0 under an allocating protocol; plain 802.11 admits all).
  struct Admission {
    FlowId flow = -1;
    double at_s = 0.0;
    bool admitted = true;
    /// Typed rejection reason (AdmissionReason from src/ctrl/admission.hpp,
    /// stored as int to keep this header light): 0 = admitted,
    /// 1 = clique overload, 2 = in-band round timed out.
    int reason = 0;
    /// Worst clique load (sum of basic shares) the candidate would induce.
    double worst_load = 0.0;
    /// In-band ADMIT round verdict under 2pa-dctrl: 1 admitted, 0 rejected,
    /// -1 round timed out / not run (every other protocol).
    int inband = -1;
    bool operator==(const Admission&) const = default;
  };
  std::vector<Admission> admissions;

  /// Total simulator events processed by the run — a deterministic proxy
  /// for simulated work (bench A/B guards compare it across source models).
  std::uint64_t events_processed = 0;

  /// Elastic-transport summary (Scenario::transport != kCbr only; all-zero
  /// and empty otherwise). ACK-plane counters plus each flow's final
  /// controller telemetry, indexed by scenario flow.
  struct TransportSummary {
    std::uint64_t acks_sent = 0;       ///< Cumulative ACKs queued at sinks.
    std::uint64_t acks_relayed = 0;    ///< Hop-by-hop ACK forwards.
    std::uint64_t acks_delivered = 0;  ///< ACKs that reached their source.
    std::vector<TransportTelemetry> flows;
  };
  TransportSummary transport;

  /// Per-epoch in-band re-convergence time (k2paDistributedCtrl multi-epoch
  /// runs only; empty otherwise): reconv_s[e] = seconds after epoch e's
  /// boundary until every active lane's applied share is within 10% + 0.02
  /// of the epoch oracle target, or a negative value when the epoch ended
  /// before the shares converged.
  std::vector<double> reconv_s;

  /// Measured share of subflow s in units of B:
  /// delivered · payload_bits / (T · B).
  double measured_subflow_share(int s, std::int64_t bps, int payload_bytes) const;
};

/// Runs phase 1 + phase 2 on the scenario. Deterministic given cfg.seed —
/// including under fault injection: the same seed and FaultPlan reproduce
/// the identical RunResult bit for bit.
///
/// When the scenario carries a FaultPlan, the runner precomputes the
/// surviving topology of every fault epoch, re-routes each flow around dead
/// nodes/links (min-hop on the surviving graph; the provisioned route is
/// kept whenever it is still alive), suspends flows whose destination is
/// unreachable (resuming them on recovery), and re-solves phase 1 over the
/// epoch's reachable flow set, pushing the fresh shares into the live
/// schedulers at the epoch boundary.
///
/// When the scenario carries a FlowActivity schedule (sc.activity) this
/// overload runs the dynamic variant below with it; when it carries
/// MobilitySpecs, each mobile node's random waypoint walk is compiled into
/// link events merged with the fault plan (src/net/mobility.hpp).
///
/// Throws ContractViolation for structurally invalid inputs: a flow with
/// src == dst or fewer than two path nodes, a fault plan referencing
/// unknown nodes / negative times / loss rates outside [0, 1], an activity
/// schedule whose size differs from the flow count, a mobility spec naming
/// an unknown node, or a phase-1 solve with infeasible basic shares
/// (over-constrained clique).
RunResult run_scenario(const Scenario& sc, Protocol proto, const SimConfig& cfg);

/// Dynamic variant: flows come and go per `activity` (one entry per flow).
/// The phase-1 allocation is recomputed over the *active* flow set at every
/// epoch boundary and pushed into the running tag schedulers — the paper's
/// algorithm applied to backlogged-flow churn. RunResult::target_* reflect
/// the first epoch; epoch_* record the full history. Arrivals (start_s > 0)
/// pass through admission control under the allocating protocols: a flow
/// whose clique-bound check fails never sources packets and is reported in
/// RunResult::admissions with a typed reason.
RunResult run_scenario(const Scenario& sc, Protocol proto, const SimConfig& cfg,
                       const std::vector<FlowActivity>& activity);

}  // namespace e2efa
