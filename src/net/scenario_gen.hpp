// Seeded random scenario generation for the fuzzer and property sweeps:
// connected geometric topologies, weighted multi-hop flow sets, and
// optional fault plans / loss models, all derived deterministically from a
// single seed (same seed + same GenConfig = same Scenario, byte for byte
// after serialize_scenario_text).
#pragma once

#include <cstdint>

#include "net/scenarios.hpp"

namespace e2efa {

struct GenConfig {
  int min_nodes = 4;
  int max_nodes = 12;
  int min_flows = 1;
  int max_flows = 4;
  /// Field side grows as side = density_m * sqrt(nodes), keeping the mean
  /// neighbor count roughly constant as the network scales.
  double density_m = 220.0;
  /// Flow weights are drawn uniformly from [1, max_weight].
  double max_weight = 4.0;
  /// Probability the scenario carries a fault plan (node crash or link cut,
  /// each with a recovery half the time).
  double p_faults = 0.3;
  /// Probability the scenario carries a loss model (default-loss rate drawn
  /// from [0, max_loss]).
  double p_loss = 0.3;
  double max_loss = 0.1;
  /// Fault times are drawn within (0, horizon_s); keep this below the
  /// fuzzer's simulated seconds so every event actually fires.
  double horizon_s = 5.0;
  /// Probability the scenario carries open-loop flow churn: each flow past
  /// the first may get a mid-run arrival and/or a departure window. 0 (the
  /// default) draws nothing, so existing seeds keep their scenarios.
  double p_churn = 0.0;
  /// Probability the scenario carries random-waypoint mobility (one or two
  /// walking nodes). 0 (the default) draws nothing.
  double p_mobility = 0.0;
  /// Walker speeds are drawn uniformly from [5, max_speed_mps] — fast
  /// enough to cross a 250 m range boundary within a fuzz-sized horizon.
  double max_speed_mps = 45.0;
  /// Probability the scenario uses a closed-loop elastic transport instead
  /// of open-loop CBR (then aimd / bbr with equal odds). 0 (the default)
  /// draws nothing, so existing seeds keep their scenarios.
  double p_transport = 0.0;
  /// 0 (default) routes each flow with a full-graph BFS to a uniformly
  /// random destination — fine at paper scale, O(nodes) per flow. > 0
  /// caps flow length: the destination is drawn from the source's
  /// max_hops-hop BFS ball, so per-flow cost is O(neighborhood) and a
  /// 10k-node / 100k-flow scenario generates in seconds. Changing it from
  /// 0 changes the RNG draw sequence, so existing seeds keep their
  /// scenarios only at the default.
  int max_hops = 0;
};

/// Generates one random scenario. Throws only if the random placement
/// cannot produce a connected topology (practically impossible at the
/// default density).
Scenario generate_scenario(std::uint64_t seed, const GenConfig& cfg = {});

}  // namespace e2efa
