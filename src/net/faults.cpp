#include "net/faults.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace e2efa {
namespace {

// Salt folded into the run seed for the loss-draw stream. Deriving the
// stream directly from the seed (instead of splitting the runner's master
// Rng) keeps every pre-existing stream — per-node backoff, jitter — exactly
// where it was before fault injection existed.
constexpr std::uint64_t kLossStreamSalt = 0x9d8f3a2bc45e17f1ULL;

std::pair<NodeId, NodeId> norm(NodeId a, NodeId b) { return std::minmax(a, b); }

}  // namespace

void FaultPlan::node_down(NodeId n, double at_s) {
  events_.push_back({FaultEvent::Kind::kNodeDown, at_s, n, kInvalidNode});
}

void FaultPlan::node_up(NodeId n, double at_s) {
  events_.push_back({FaultEvent::Kind::kNodeUp, at_s, n, kInvalidNode});
}

void FaultPlan::link_down(NodeId a, NodeId b, double at_s) {
  events_.push_back({FaultEvent::Kind::kLinkDown, at_s, a, b});
}

void FaultPlan::link_up(NodeId a, NodeId b, double at_s) {
  events_.push_back({FaultEvent::Kind::kLinkUp, at_s, a, b});
}

void FaultPlan::set_loss(NodeId a, NodeId b, double per) {
  loss_rules_.push_back({a, b, per});
}

void FaultPlan::set_default_loss(double per) { default_loss_ = per; }

bool FaultPlan::has_loss() const {
  if (default_loss_ > 0.0) return true;
  return std::any_of(loss_rules_.begin(), loss_rules_.end(),
                     [](const LossRule& r) { return r.per > 0.0; });
}

std::vector<double> FaultPlan::event_times() const {
  std::vector<double> times;
  times.reserve(events_.size());
  for (const FaultEvent& e : events_) times.push_back(e.at_s);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

TopologyMask FaultPlan::mask_at(double at_s, int node_count) const {
  // Apply every event with time <= at_s in schedule order (stable within a
  // time: later directives in the scenario win ties, as a reader expects).
  std::vector<FaultEvent> ordered = events_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at_s < y.at_s; });

  std::vector<bool> up(static_cast<std::size_t>(node_count), true);
  std::vector<std::pair<NodeId, NodeId>> down;
  for (const FaultEvent& e : ordered) {
    if (e.at_s > at_s) break;
    switch (e.kind) {
      case FaultEvent::Kind::kNodeDown:
        up[static_cast<std::size_t>(e.node)] = false;
        break;
      case FaultEvent::Kind::kNodeUp:
        up[static_cast<std::size_t>(e.node)] = true;
        break;
      case FaultEvent::Kind::kLinkDown: {
        const auto key = norm(e.node, e.peer);
        if (std::find(down.begin(), down.end(), key) == down.end()) down.push_back(key);
        break;
      }
      case FaultEvent::Kind::kLinkUp: {
        const auto key = norm(e.node, e.peer);
        down.erase(std::remove(down.begin(), down.end(), key), down.end());
        break;
      }
    }
  }

  TopologyMask mask;
  if (std::find(up.begin(), up.end(), false) != up.end()) mask.node_up = std::move(up);
  std::sort(down.begin(), down.end());  // canonical form so masks compare ==
  mask.down_links = std::move(down);
  return mask;
}

double FaultPlan::loss(NodeId a, NodeId b) const {
  const auto key = norm(a, b);
  // Most recently added specific rule wins.
  for (auto it = loss_rules_.rbegin(); it != loss_rules_.rend(); ++it) {
    if (norm(it->a, it->b) == key) return it->per;
  }
  return default_loss_;
}

void FaultPlan::validate(int node_count) const {
  auto check_node = [node_count](NodeId n) {
    E2EFA_ASSERT_MSG(n >= 0 && n < node_count, "fault plan references unknown node");
  };
  for (const FaultEvent& e : events_) {
    E2EFA_ASSERT_MSG(e.at_s >= 0.0, "fault event scheduled at negative time");
    check_node(e.node);
    const bool link_event = e.kind == FaultEvent::Kind::kLinkDown ||
                            e.kind == FaultEvent::Kind::kLinkUp;
    if (link_event) {
      check_node(e.peer);
      E2EFA_ASSERT_MSG(e.node != e.peer, "link fault with identical endpoints");
    }
  }
  for (const LossRule& r : loss_rules_) {
    check_node(r.a);
    check_node(r.b);
    E2EFA_ASSERT_MSG(r.a != r.b, "loss rule with identical endpoints");
    E2EFA_ASSERT_MSG(r.per >= 0.0 && r.per <= 1.0,
                     "packet-error rate outside [0, 1]");
  }
  E2EFA_ASSERT_MSG(default_loss_ >= 0.0 && default_loss_ <= 1.0,
                   "packet-error rate outside [0, 1]");
}

FaultRuntime::FaultRuntime(const FaultPlan& plan, int node_count, std::uint64_t seed)
    : plan_(plan), rng_(seed ^ kLossStreamSalt), any_loss_(plan.has_loss()) {
  mask_ = plan.mask_at(0.0, node_count);
}

bool FaultRuntime::lossy(NodeId a, NodeId b) const {
  return any_loss_ && plan_.loss(a, b) > 0.0;
}

bool FaultRuntime::draw_loss(NodeId a, NodeId b) {
  return rng_.bernoulli(plan_.loss(a, b));
}

}  // namespace e2efa
