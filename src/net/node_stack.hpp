// Per-node protocol stack: transmit queue(s) + backoff policy + DCF MAC,
// plus the forwarding plane (deliver / relay / count).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "flow/flow.hpp"
#include "mac/dcf_mac.hpp"
#include "sched/tx_queue.hpp"
#include "traffic/stats.hpp"

namespace e2efa {

class NodeStack : public MacCallbacks {
 public:
  NodeStack(Simulator& sim, Channel& channel, NodeId self, const FlowSet& flows,
            TrafficStats& stats, const MacConfig& mac_cfg,
            std::unique_ptr<TxQueue> queue, std::unique_ptr<BackoffPolicy> backoff,
            Rng mac_rng, TagAgent* tags);

  /// Entry point for locally generated (source) packets; stamps the first
  /// hop and enqueues. Forwarded packets arrive via on_packet_delivered.
  void inject_from_source(Packet p, FlowId flow);

  // --- MacCallbacks ---
  void on_packet_delivered(const Packet& p) override;
  void on_packet_sent(const Packet& p) override;
  void on_packet_dropped(const Packet& p) override;

  const DcfMac& mac() const { return *mac_; }
  /// Mutable MAC access for wiring the in-band control plane (listener,
  /// piggyback source, send_ctrl).
  DcfMac& mac() { return *mac_; }
  NodeId self() const { return self_; }
  int backlog() const { return queue_->backlog(); }

  /// Installs the trace sink for this node's queue events and forwards it
  /// to the MAC. Null (default) = disabled.
  void set_trace(TraceSink* trace) {
    trace_ = trace;
    mac_->set_trace(trace);
  }

  /// Installs the invariant-check observer (conservation ledger) and
  /// forwards it to the MAC (backoff oracle). Null (default) = disabled.
  void set_check(CheckContext* check) {
    check_ = check;
    mac_->set_check(check);
  }

  /// Observer for link-layer delivery failure: invoked whenever the MAC
  /// exhausts its retry limit and drops a packet at this node — the
  /// upstream signal ("link to next hop is not delivering") that route
  /// repair and fault accounting key off. Fires regardless of warm-up.
  using LinkFailureListener = std::function<void(const Packet&, TimeNs)>;
  void set_link_failure_listener(LinkFailureListener fn) {
    on_link_failure_ = std::move(fn);
  }

  /// Transport-layer sink hook (AckPlane): invoked for every uid-unique
  /// last-hop delivery; returns true when the *sequence* is fresh (first
  /// arrival at the sink). End-to-end stats count only fresh deliveries, so
  /// a retransmitted copy is acked but never double-counted. Null
  /// (default): every uid-unique delivery is fresh (open-loop CBR).
  using TransportSink = std::function<bool(const Packet&, TimeNs)>;
  void set_transport_sink(TransportSink fn) { transport_sink_ = std::move(fn); }

 private:
  void enqueue_and_notify(Packet p);

  Simulator& sim_;
  NodeId self_;
  const FlowSet& flows_;
  TrafficStats& stats_;
  std::unique_ptr<TxQueue> queue_;
  std::unique_ptr<BackoffPolicy> backoff_;
  std::unique_ptr<DcfMac> mac_;
  /// Duplicate suppression: uid of the last packet delivered per incoming
  /// subflow. MAC-level duplicates (lost ACK, sender retried) are always
  /// consecutive copies of the *same* packet, so remembering one uid
  /// suffices — and unlike a sequence watermark it lets a transport
  /// retransmission (same seq, fresh uid) pass through the relay chain.
  std::unordered_map<std::int32_t, std::uint64_t> last_uid_;
  LinkFailureListener on_link_failure_;
  TransportSink transport_sink_;
  TraceSink* trace_ = nullptr;
  CheckContext* check_ = nullptr;
};

}  // namespace e2efa
