#include "net/fluid.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace e2efa {

TimeNs per_packet_airtime(int payload_bytes, const MacConfig& mac, std::int64_t bps,
                          int cw_min) {
  E2EFA_ASSERT(payload_bytes > 0 && bps > 0 && cw_min >= 1);
  auto dur = [&](int bytes) { return tx_duration(8LL * bytes, bps); };
  const TimeNs data = dur(mac.sizes.data_header + payload_bytes);
  const TimeNs ack = dur(mac.sizes.ack);
  const TimeNs mean_backoff = mac.slot * cw_min / 2;
  TimeNs total = mac.difs + mean_backoff + data + mac.sifs + ack;
  if (mac.use_rts_cts) {
    total += dur(mac.sizes.rts) + mac.sifs + dur(mac.sizes.cts) + mac.sifs;
  }
  return total;
}

double effective_packet_rate(int payload_bytes, const MacConfig& mac,
                             std::int64_t bps, int cw_min) {
  return 1e9 / static_cast<double>(per_packet_airtime(payload_bytes, mac, bps, cw_min));
}

FluidPrediction fluid_predict(const FlowSet& flows, const Allocation& alloc,
                              double source_pps, int payload_bytes,
                              const MacConfig& mac, std::int64_t bps, int cw_min) {
  E2EFA_ASSERT(static_cast<int>(alloc.subflow_share.size()) == flows.subflow_count());
  E2EFA_ASSERT(source_pps > 0.0);
  const double unit_rate = effective_packet_rate(payload_bytes, mac, bps, cw_min);

  FluidPrediction out;
  out.subflow_rate.assign(static_cast<std::size_t>(flows.subflow_count()), 0.0);
  out.flow_rate.assign(static_cast<std::size_t>(flows.flow_count()), 0.0);

  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    double upstream = source_pps;
    double first_hop = 0.0;
    for (int h = 0; h < flows.flow(f).length(); ++h) {
      const int s = flows.subflow_index(f, h);
      const double capacity =
          alloc.subflow_share[static_cast<std::size_t>(s)] * unit_rate;
      const double served = std::min(upstream, capacity);
      out.subflow_rate[static_cast<std::size_t>(s)] = served;
      if (h == 0) first_hop = served;
      upstream = served;
    }
    out.flow_rate[static_cast<std::size_t>(f)] = upstream;
    out.total_flow_rate += upstream;
    out.loss_rate += first_hop - upstream;
  }
  return out;
}

}  // namespace e2efa
