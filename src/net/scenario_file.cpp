#include "net/scenario_file.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "route/routing.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ContractViolation(strformat("scenario file line %d: %s", line, msg.c_str()));
}

struct FlowSpec {
  std::vector<std::string> nodes;
  double weight = 1.0;
  int line = 0;
};

// fault/recover directives, with labels still unresolved.
struct FaultSpec {
  bool recover = false;  ///< false: fault (down), true: recover (up).
  bool link = false;     ///< false: node event, true: link event.
  std::string a, b;      ///< Node label(s); b only for link events.
  double at_s = 0.0;
  int line = 0;
};

struct LossSpec {
  bool is_default = false;
  std::string a, b;
  double per = 0.0;
  int line = 0;
};

// flow_arrive / flow_depart directives (flow ordinals resolved after all
// flows are read).
struct ChurnSpec {
  bool depart = false;
  int flow = -1;
  double at_s = 0.0;
  int line = 0;
};

// mobility directives, with the node label still unresolved.
struct MobSpec {
  std::string label;
  double speed = 0.0;
  double pause = 0.0;
  std::uint64_t seed = 0;
  int line = 0;
};

}  // namespace

Scenario parse_scenario_text(const std::string& text, std::string name) {
  std::vector<Point> positions;
  std::vector<std::string> labels;
  std::map<std::string, NodeId> by_label;
  std::vector<FlowSpec> flow_specs;
  std::vector<FaultSpec> fault_specs;
  std::vector<LossSpec> loss_specs;
  std::vector<ChurnSpec> churn_specs;
  std::vector<MobSpec> mob_specs;
  double range = 250.0;
  double irange = -1.0;
  TransportKind transport = TransportKind::kCbr;
  int transport_line = 0;

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;  // blank / comment-only

    if (cmd == "range" || cmd == "irange") {
      double v;
      if (!(line >> v) || v <= 0) fail(lineno, cmd + " needs a positive number");
      (cmd == "range" ? range : irange) = v;
    } else if (cmd == "node") {
      std::string label;
      double x, y;
      if (!(line >> label >> x >> y)) fail(lineno, "node needs: label x y");
      if (by_label.contains(label)) fail(lineno, "duplicate node label " + label);
      by_label[label] = static_cast<NodeId>(positions.size());
      positions.push_back({x, y});
      labels.push_back(label);
    } else if (cmd == "flow") {
      FlowSpec spec;
      spec.line = lineno;
      std::string tok;
      while (line >> tok) {
        if (tok == "weight") {
          if (!(line >> spec.weight) || spec.weight <= 0)
            fail(lineno, "weight needs a positive number");
          std::string extra;
          if (line >> extra) fail(lineno, "unexpected token after weight");
          break;
        }
        spec.nodes.push_back(tok);
      }
      if (spec.nodes.size() < 2) fail(lineno, "flow needs at least two nodes");
      flow_specs.push_back(std::move(spec));
    } else if (cmd == "fault" || cmd == "recover") {
      FaultSpec spec;
      spec.recover = cmd == "recover";
      spec.line = lineno;
      std::string kind;
      if (!(line >> kind) || (kind != "node" && kind != "link"))
        fail(lineno, cmd + " needs: " + cmd + " node|link ...");
      spec.link = kind == "link";
      const std::string usage =
          cmd + (spec.link ? " link needs: two node labels and a time"
                           : " node needs: a node label and a time");
      if (!(line >> spec.a)) fail(lineno, usage);
      if (spec.link && !(line >> spec.b)) fail(lineno, usage);
      if (!(line >> spec.at_s)) fail(lineno, usage);
      if (spec.at_s < 0) fail(lineno, cmd + " time must not be negative");
      std::string extra;
      if (line >> extra) fail(lineno, "unexpected token after " + cmd);
      fault_specs.push_back(std::move(spec));
    } else if (cmd == "loss") {
      LossSpec spec;
      spec.line = lineno;
      if (!(line >> spec.a)) fail(lineno, "loss needs: a b rate, or: default rate");
      if (spec.a == "default") {
        spec.is_default = true;
        if (!(line >> spec.per)) fail(lineno, "loss default needs a rate");
      } else {
        if (!(line >> spec.b >> spec.per))
          fail(lineno, "loss needs: a b rate, or: default rate");
      }
      if (spec.per < 0.0 || spec.per > 1.0)
        fail(lineno, "loss rate must be within [0, 1]");
      std::string extra;
      if (line >> extra) fail(lineno, "unexpected token after loss");
      loss_specs.push_back(std::move(spec));
    } else if (cmd == "flow_arrive" || cmd == "flow_depart") {
      ChurnSpec spec;
      spec.depart = cmd == "flow_depart";
      spec.line = lineno;
      if (!(line >> spec.flow >> spec.at_s))
        fail(lineno, cmd + " needs: flow-index time");
      if (spec.flow < 0) fail(lineno, cmd + " flow index must not be negative");
      if (spec.at_s < 0) fail(lineno, cmd + " time must not be negative");
      std::string extra;
      if (line >> extra) fail(lineno, "unexpected token after " + cmd);
      churn_specs.push_back(spec);
    } else if (cmd == "mobility") {
      MobSpec spec;
      spec.line = lineno;
      if (!(line >> spec.label))
        fail(lineno, "mobility needs: label speed v [pause p] [seed k]");
      bool have_speed = false;
      std::string key;
      while (line >> key) {
        if (key == "speed") {
          if (!(line >> spec.speed)) fail(lineno, "mobility speed needs a number");
          have_speed = true;
        } else if (key == "pause") {
          if (!(line >> spec.pause)) fail(lineno, "mobility pause needs a number");
        } else if (key == "seed") {
          if (!(line >> spec.seed)) fail(lineno, "mobility seed needs an integer");
        } else {
          fail(lineno, "unknown mobility option '" + key + "'");
        }
      }
      if (!have_speed || spec.speed <= 0)
        fail(lineno, "mobility needs a positive speed");
      if (spec.pause < 0) fail(lineno, "mobility pause must not be negative");
      mob_specs.push_back(std::move(spec));
    } else if (cmd == "transport") {
      std::string kind;
      if (!(line >> kind)) fail(lineno, "transport needs: cbr|aimd|bbr");
      if (transport_line != 0)
        fail(lineno, strformat("duplicate transport directive (line %d)",
                               transport_line));
      transport_line = lineno;
      const auto parsed = parse_transport_kind(kind);
      if (!parsed) fail(lineno, "unknown transport kind '" + kind + "'");
      transport = *parsed;
      std::string extra;
      if (line >> extra) fail(lineno, "unexpected token after transport");
    } else {
      fail(lineno, "unknown directive '" + cmd + "'");
    }
  }
  if (positions.empty()) throw ContractViolation("scenario file defines no nodes");
  if (flow_specs.empty()) throw ContractViolation("scenario file defines no flows");

  Topology topo(std::move(positions), range,
                irange > 0 ? std::optional<double>(irange) : std::nullopt);
  topo.set_labels(labels);

  Scenario sc{std::move(name), std::move(topo), {}, {}};
  sc.transport = transport;
  for (const FlowSpec& spec : flow_specs) {
    std::vector<NodeId> ids;
    for (const std::string& label : spec.nodes) {
      const auto it = by_label.find(label);
      if (it == by_label.end()) fail(spec.line, "unknown node label " + label);
      ids.push_back(it->second);
    }
    if (ids.size() == 2) {
      const auto path = shortest_path(sc.topo, ids[0], ids[1]);
      if (!path)
        fail(spec.line, "no route from " + spec.nodes[0] + " to " + spec.nodes[1]);
      Flow f;
      f.path = *path;
      f.weight = spec.weight;
      sc.flow_specs.push_back(std::move(f));
    } else {
      Flow f;
      f.path = std::move(ids);
      f.weight = spec.weight;
      for (std::size_t h = 0; h + 1 < f.path.size(); ++h) {
        if (!sc.topo.has_link(f.path[h], f.path[h + 1]))
          fail(spec.line, "hop " + spec.nodes[h] + " -> " + spec.nodes[h + 1] +
                              " is not a link");
      }
      sc.flow_specs.push_back(std::move(f));
    }
  }

  // Resolve fault/loss directives (labels may be defined anywhere in the
  // file, so this has to run after all nodes are known).
  auto resolve = [&](const std::string& label, int line) {
    const auto it = by_label.find(label);
    if (it == by_label.end()) fail(line, "unknown node label " + label);
    return it->second;
  };
  // Per-target monotonicity: the FaultPlan applies events in file order, so
  // a fault/recover whose time precedes an earlier directive for the same
  // node or link would silently be overridden — reject it at the source.
  std::map<std::pair<NodeId, NodeId>, std::pair<double, int>> last_event;
  auto check_order = [&](NodeId a, NodeId b, double t, int line) {
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    const auto it = last_event.find(key);
    if (it != last_event.end() && t < it->second.first)
      fail(line, strformat("out-of-order time %g: an earlier directive for the "
                           "same target (line %d) is at t=%g",
                           t, it->second.second, it->second.first));
    last_event[key] = {t, line};
  };
  for (const FaultSpec& spec : fault_specs) {
    const NodeId a = resolve(spec.a, spec.line);
    if (!spec.link) {
      check_order(a, kInvalidNode, spec.at_s, spec.line);
      spec.recover ? sc.faults.node_up(a, spec.at_s)
                   : sc.faults.node_down(a, spec.at_s);
      continue;
    }
    const NodeId b = resolve(spec.b, spec.line);
    if (a == b) fail(spec.line, "link fault endpoints must differ");
    check_order(a, b, spec.at_s, spec.line);
    spec.recover ? sc.faults.link_up(a, b, spec.at_s)
                 : sc.faults.link_down(a, b, spec.at_s);
  }
  for (const LossSpec& spec : loss_specs) {
    if (spec.is_default) {
      sc.faults.set_default_loss(spec.per);
      continue;
    }
    const NodeId a = resolve(spec.a, spec.line);
    const NodeId b = resolve(spec.b, spec.line);
    if (a == b) fail(spec.line, "loss endpoints must differ");
    sc.faults.set_loss(a, b, spec.per);
  }

  // Flow churn windows. Ordinals index the flow list in file order; an
  // all-default window vector is normalized away so churn-free files stay
  // non-dynamic (and serialization is a fixed point).
  if (!churn_specs.empty()) {
    const int FC = static_cast<int>(sc.flow_specs.size());
    sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
    std::vector<int> arrive_line(sc.flow_specs.size(), 0);
    std::vector<int> depart_line(sc.flow_specs.size(), 0);
    for (const ChurnSpec& spec : churn_specs) {
      if (spec.flow >= FC)
        fail(spec.line, strformat("flow index %d out of range (%d flows defined)",
                                  spec.flow, FC));
      const auto f = static_cast<std::size_t>(spec.flow);
      if (spec.depart) {
        if (depart_line[f] != 0)
          fail(spec.line, strformat("duplicate flow_depart for flow %d (line %d)",
                                    spec.flow, depart_line[f]));
        depart_line[f] = spec.line;
        sc.activity[f].stop_s = spec.at_s;
      } else {
        if (arrive_line[f] != 0)
          fail(spec.line, strformat("duplicate flow_arrive for flow %d (line %d)",
                                    spec.flow, arrive_line[f]));
        arrive_line[f] = spec.line;
        sc.activity[f].start_s = spec.at_s;
      }
    }
    for (std::size_t f = 0; f < sc.activity.size(); ++f) {
      if (depart_line[f] != 0 && sc.activity[f].stop_s <= sc.activity[f].start_s)
        fail(depart_line[f],
             strformat("flow_depart at or before flow %d's arrival (t=%g)",
                       static_cast<int>(f), sc.activity[f].start_s));
    }
    if (all_default_activity(sc.activity)) sc.activity.clear();
  }

  // Mobility walks (labels resolved now; one walk per node).
  std::map<NodeId, int> mob_line;
  for (const MobSpec& spec : mob_specs) {
    const NodeId n = resolve(spec.label, spec.line);
    const auto it = mob_line.find(n);
    if (it != mob_line.end())
      fail(spec.line,
           strformat("duplicate mobility for node %s (line %d)",
                     spec.label.c_str(), it->second));
    mob_line[n] = spec.line;
    MobilitySpec m;
    m.node = n;
    m.speed_mps = spec.speed;
    m.pause_s = spec.pause;
    m.seed = spec.seed;
    sc.mobility.push_back(m);
  }
  return sc;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  E2EFA_ASSERT_MSG(in.good(), "cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_text(buf.str(), path);
}

std::string serialize_scenario_text(const Scenario& sc) {
  std::string out = "# scenario: " + sc.name + "\n";
  out += strformat("range %.17g\n", sc.topo.tx_range());
  // The default (cbr) is omitted so pre-transport files round-trip
  // byte-identically.
  if (sc.transport != TransportKind::kCbr)
    out += strformat("transport %s\n", to_string(sc.transport));
  if (sc.topo.interference_range() != sc.topo.tx_range())
    out += strformat("irange %.17g\n", sc.topo.interference_range());
  for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
    const Point& p = sc.topo.position(n);
    const std::string label = sc.topo.label(n);
    E2EFA_ASSERT_MSG(!label.empty() &&
                         label.find_first_of(" \t#") == std::string::npos,
                     "node label is not a serializable token");
    out += strformat("node %s %.17g %.17g\n", label.c_str(), p.x, p.y);
  }
  for (const Flow& f : sc.flow_specs) {
    // Multi-hop paths are written explicitly: a 2-endpoint form would be
    // re-routed min-hop on parse, and a routing tie could pick a different
    // path. Single-hop flows have no tie to break.
    out += "flow";
    for (NodeId n : f.path) out += " " + sc.topo.label(n);
    out += strformat(" weight %.17g\n", f.weight);
  }
  if (!sc.activity.empty()) {
    E2EFA_ASSERT_MSG(sc.activity.size() == sc.flow_specs.size(),
                     "scenario activity size mismatch");
    for (std::size_t f = 0; f < sc.activity.size(); ++f) {
      const FlowActivity& w = sc.activity[f];
      if (w.start_s != 0.0)
        out += strformat("flow_arrive %d %.17g\n", static_cast<int>(f), w.start_s);
      if (w.stop_s != kFlowNeverStops)
        out += strformat("flow_depart %d %.17g\n", static_cast<int>(f), w.stop_s);
    }
  }
  {
    // Sorted by node so the output is canonical whatever order the specs
    // were added in; pause and seed are always written (their defaults are
    // unambiguous), which makes serialization a fixed point under re-parse.
    std::vector<MobilitySpec> mob = sc.mobility;
    std::sort(mob.begin(), mob.end(),
              [](const MobilitySpec& a, const MobilitySpec& b) {
                return a.node < b.node;
              });
    for (const MobilitySpec& m : mob)
      out += strformat("mobility %s speed %.17g pause %.17g seed %llu\n",
                       sc.topo.label(m.node).c_str(), m.speed_mps, m.pause_s,
                       static_cast<unsigned long long>(m.seed));
  }
  for (const FaultEvent& e : sc.faults.events()) {
    const char* cmd =
        e.kind == FaultEvent::Kind::kNodeDown || e.kind == FaultEvent::Kind::kLinkDown
            ? "fault"
            : "recover";
    const bool link = e.kind == FaultEvent::Kind::kLinkDown ||
                      e.kind == FaultEvent::Kind::kLinkUp;
    if (link)
      out += strformat("%s link %s %s %.17g\n", cmd,
                       sc.topo.label(e.node).c_str(), sc.topo.label(e.peer).c_str(),
                       e.at_s);
    else
      out += strformat("%s node %s %.17g\n", cmd, sc.topo.label(e.node).c_str(),
                       e.at_s);
  }
  for (const LossRule& r : sc.faults.loss_rules())
    out += strformat("loss %s %s %.17g\n", sc.topo.label(r.a).c_str(),
                     sc.topo.label(r.b).c_str(), r.per);
  if (sc.faults.default_loss() > 0.0)
    out += strformat("loss default %.17g\n", sc.faults.default_loss());
  return out;
}

}  // namespace e2efa
