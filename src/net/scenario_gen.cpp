#include "net/scenario_gen.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace e2efa {

Scenario generate_scenario(std::uint64_t seed, const GenConfig& cfg) {
  E2EFA_ASSERT(cfg.min_nodes >= 2 && cfg.max_nodes >= cfg.min_nodes);
  E2EFA_ASSERT(cfg.min_flows >= 1 && cfg.max_flows >= cfg.min_flows);
  E2EFA_ASSERT(cfg.horizon_s > 0.0);
  Rng rng(seed);

  const int n = static_cast<int>(rng.uniform_i64(cfg.min_nodes, cfg.max_nodes));
  const double side = cfg.density_m * std::sqrt(static_cast<double>(n));
  Scenario sc{strformat("fuzz-%llu", static_cast<unsigned long long>(seed)),
              make_random(n, side, side, rng),
              {},
              {}};

  const int flows =
      static_cast<int>(rng.uniform_i64(cfg.min_flows, cfg.max_flows));
  // Scratch for the bounded-hop mode, reused across flows.
  std::vector<NodeId> parent, ball;
  std::vector<int> dist;
  if (cfg.max_hops > 0) {
    parent.assign(static_cast<std::size_t>(n), kInvalidNode);
    dist.assign(static_cast<std::size_t>(n), -1);
  }
  for (int f = 0; f < flows; ++f) {
    if (cfg.max_hops > 0) {
      // Destination from the source's max_hops-hop BFS ball: per-flow cost
      // is the ball size, not the network size. The parent tree doubles as
      // the route (BFS with ascending neighbor lists matches
      // shortest_path's smallest-id-parent tie-break).
      const NodeId a =
          static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      ball.clear();
      dist[static_cast<std::size_t>(a)] = 0;
      ball.push_back(a);
      for (std::size_t head = 0; head < ball.size(); ++head) {
        const NodeId u = ball[head];
        if (dist[static_cast<std::size_t>(u)] >= cfg.max_hops) continue;
        for (NodeId v : sc.topo.neighbors(u)) {
          if (dist[static_cast<std::size_t>(v)] >= 0) continue;
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          parent[static_cast<std::size_t>(v)] = u;
          ball.push_back(v);
        }
      }
      // The topology is connected with >= 2 nodes, so the ball always has
      // at least one node besides the source.
      const NodeId b =
          ball[1 + rng.uniform_u64(static_cast<std::uint64_t>(ball.size() - 1))];
      Flow spec;
      spec.path.push_back(b);
      for (NodeId w = b; w != a; w = parent[static_cast<std::size_t>(w)])
        spec.path.push_back(parent[static_cast<std::size_t>(w)]);
      std::reverse(spec.path.begin(), spec.path.end());
      spec.weight = rng.uniform(1.0, cfg.max_weight);
      sc.flow_specs.push_back(std::move(spec));
      for (NodeId u : ball) dist[static_cast<std::size_t>(u)] = -1;
      continue;
    }
    NodeId a, b;
    do {
      a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    } while (a == b);
    sc.flow_specs.push_back(
        make_routed_flow(sc.topo, a, b, rng.uniform(1.0, cfg.max_weight)));
  }

  if (rng.uniform01() < cfg.p_faults) {
    const double at = rng.uniform(0.2, 0.7) * cfg.horizon_s;
    const bool recovers = rng.bernoulli(0.5);
    const double back = at + rng.uniform(0.1, 0.25) * cfg.horizon_s;
    if (rng.bernoulli(0.5)) {
      const NodeId v =
          static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      sc.faults.node_down(v, at);
      if (recovers) sc.faults.node_up(v, back);
    } else {
      // Cut a random existing link (every connected topology has one).
      std::vector<std::pair<NodeId, NodeId>> links;
      for (NodeId a = 0; a < n; ++a)
        for (NodeId b : sc.topo.neighbors(a))
          if (a < b) links.emplace_back(a, b);
      const auto [a, b] = links[rng.uniform_u64(links.size())];
      sc.faults.link_down(a, b, at);
      if (recovers) sc.faults.link_up(a, b, back);
    }
  }
  if (rng.uniform01() < cfg.p_loss)
    sc.faults.set_default_loss(rng.uniform(0.0, cfg.max_loss));

  // Open-loop dynamics. Both blocks are draw-guarded on their probability
  // being nonzero, and come after every pre-existing draw, so configs that
  // leave them at 0 reproduce historical seeds byte for byte.
  if (cfg.p_churn > 0.0 && rng.uniform01() < cfg.p_churn) {
    // Flow 0 stays a founding flow (the run never starts empty); the rest
    // may arrive mid-run, depart mid-run, or both.
    sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
    for (std::size_t f = 1; f < sc.activity.size(); ++f) {
      FlowActivity& w = sc.activity[f];
      if (rng.bernoulli(0.6)) w.start_s = rng.uniform(0.1, 0.6) * cfg.horizon_s;
      if (rng.bernoulli(0.5))
        w.stop_s = w.start_s + rng.uniform(0.2, 0.5) * cfg.horizon_s;
    }
    if (all_default_activity(sc.activity)) sc.activity.clear();
  }
  if (cfg.p_mobility > 0.0 && rng.uniform01() < cfg.p_mobility) {
    const int walkers = n >= 3 && rng.bernoulli(0.4) ? 2 : 1;
    std::vector<NodeId> moving;
    while (static_cast<int>(moving.size()) < walkers) {
      const NodeId v =
          static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      if (std::find(moving.begin(), moving.end(), v) == moving.end())
        moving.push_back(v);
    }
    for (NodeId v : moving) {
      MobilitySpec m;
      m.node = v;
      m.speed_mps = rng.uniform(5.0, cfg.max_speed_mps);
      m.pause_s = rng.bernoulli(0.3) ? rng.uniform(0.0, 1.0) : 0.0;
      m.seed = rng.uniform_u64(1u << 20);
      sc.mobility.push_back(m);
    }
    std::sort(sc.mobility.begin(), sc.mobility.end(),
              [](const MobilitySpec& a, const MobilitySpec& b) {
                return a.node < b.node;
              });
  }
  if (cfg.p_transport > 0.0 && rng.uniform01() < cfg.p_transport)
    sc.transport = rng.bernoulli(0.5) ? TransportKind::kAimd : TransportKind::kBbr;
  return sc;
}

}  // namespace e2efa
