#include "net/scenario_gen.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace e2efa {

Scenario generate_scenario(std::uint64_t seed, const GenConfig& cfg) {
  E2EFA_ASSERT(cfg.min_nodes >= 2 && cfg.max_nodes >= cfg.min_nodes);
  E2EFA_ASSERT(cfg.min_flows >= 1 && cfg.max_flows >= cfg.min_flows);
  E2EFA_ASSERT(cfg.horizon_s > 0.0);
  Rng rng(seed);

  const int n = static_cast<int>(rng.uniform_i64(cfg.min_nodes, cfg.max_nodes));
  const double side = cfg.density_m * std::sqrt(static_cast<double>(n));
  Scenario sc{strformat("fuzz-%llu", static_cast<unsigned long long>(seed)),
              make_random(n, side, side, rng),
              {},
              {}};

  const int flows =
      static_cast<int>(rng.uniform_i64(cfg.min_flows, cfg.max_flows));
  for (int f = 0; f < flows; ++f) {
    NodeId a, b;
    do {
      a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    } while (a == b);
    sc.flow_specs.push_back(
        make_routed_flow(sc.topo, a, b, rng.uniform(1.0, cfg.max_weight)));
  }

  if (rng.uniform01() < cfg.p_faults) {
    const double at = rng.uniform(0.2, 0.7) * cfg.horizon_s;
    const bool recovers = rng.bernoulli(0.5);
    const double back = at + rng.uniform(0.1, 0.25) * cfg.horizon_s;
    if (rng.bernoulli(0.5)) {
      const NodeId v =
          static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      sc.faults.node_down(v, at);
      if (recovers) sc.faults.node_up(v, back);
    } else {
      // Cut a random existing link (every connected topology has one).
      std::vector<std::pair<NodeId, NodeId>> links;
      for (NodeId a = 0; a < n; ++a)
        for (NodeId b : sc.topo.neighbors(a))
          if (a < b) links.emplace_back(a, b);
      const auto [a, b] = links[rng.uniform_u64(links.size())];
      sc.faults.link_down(a, b, at);
      if (recovers) sc.faults.link_up(a, b, back);
    }
  }
  if (rng.uniform01() < cfg.p_loss)
    sc.faults.set_default_loss(rng.uniform(0.0, cfg.max_loss));
  return sc;
}

}  // namespace e2efa
