#include "net/scenarios.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {

bool all_default_activity(const std::vector<FlowActivity>& activity) {
  for (const FlowActivity& w : activity) {
    if (w != FlowActivity{}) return false;
  }
  return true;
}

Scenario scenario1() {
  // A(0) B(1) C(2) carry F1; D(3) E(4) F(5) carry F2. C and E are in range
  // (200 m), which makes F1.2 contend with F2.1 and F2.2; A and B are out
  // of range of all of D/E/F, so F1.1 contends only with F1.2.
  std::vector<Point> pos{
      {0, 0},      // A
      {200, 0},    // B
      {400, 0},    // C
      {800, 0},    // D
      {600, 0},    // E
      {600, -200}, // F
  };
  Topology topo(std::move(pos), /*tx_range_m=*/250.0);
  topo.set_labels({"A", "B", "C", "D", "E", "F"});
  Scenario sc{"scenario1 (Fig. 1)", std::move(topo), {}, {}, {}, {}};
  Flow f1;
  f1.path = {0, 1, 2};  // A -> B -> C
  Flow f2;
  f2.path = {3, 4, 5};  // D -> E -> F
  sc.flow_specs = {f1, f2};
  return sc;
}

Scenario scenario2() {
  // Fig. 6: F1 is the 4-hop chain A..E along the x axis; F2 (F->G) hangs
  // below D so F2.1 contends with F1.3 and F1.4 only; F3 (H->I) bridges F2
  // and F4; F4 (J->K->L) continues east; F5 (M->N) hangs below F4 within
  // range of J and K. Maximal cliques are exactly Ω1..Ω6 of the paper.
  std::vector<Point> pos{
      {0, 0},       // 0  A
      {200, 0},     // 1  B
      {400, 0},     // 2  C
      {600, 0},     // 3  D
      {800, 0},     // 4  E
      {600, -400},  // 5  F
      {600, -200},  // 6  G
      {600, -600},  // 7  H
      {800, -600},  // 8  I
      {1000, -600}, // 9  J
      {1200, -600}, // 10 K
      {1400, -600}, // 11 L
      {1100, -780}, // 12 M
      {1300, -780}, // 13 N
  };
  Topology topo(std::move(pos), /*tx_range_m=*/250.0);
  topo.set_labels({"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N"});
  Scenario sc{"scenario2 (Fig. 6)", std::move(topo), {}, {}, {}, {}};
  Flow f1;
  f1.path = {0, 1, 2, 3, 4};  // A -> B -> C -> D -> E
  Flow f2;
  f2.path = {5, 6};  // F -> G
  Flow f3;
  f3.path = {7, 8};  // H -> I
  Flow f4;
  f4.path = {9, 10, 11};  // J -> K -> L
  Flow f5;
  f5.path = {12, 13};  // M -> N
  sc.flow_specs = {f1, f2, f3, f4, f5};
  return sc;
}

Scenario make_abstract_scenario(const std::vector<int>& hop_counts,
                                const std::vector<double>& weights, std::string name) {
  E2EFA_ASSERT(hop_counts.size() == weights.size());
  E2EFA_ASSERT(!hop_counts.empty());
  // Each flow gets its own chain at a far-away y offset; 200 m hop spacing
  // keeps chains shortcut-free, 10 km separation keeps flows geometrically
  // independent, so all inter-flow contention comes from explicit edges.
  std::vector<Point> pos;
  std::vector<std::string> labels;
  std::vector<Flow> specs;
  for (std::size_t i = 0; i < hop_counts.size(); ++i) {
    E2EFA_ASSERT(hop_counts[i] >= 1);
    Flow f;
    f.weight = weights[i];
    for (int h = 0; h <= hop_counts[i]; ++h) {
      f.path.push_back(static_cast<NodeId>(pos.size()));
      pos.push_back({200.0 * h, 10000.0 * static_cast<double>(i)});
      labels.push_back(strformat("N%zu.%d", i + 1, h));
    }
    specs.push_back(std::move(f));
  }
  Topology topo(std::move(pos), /*tx_range_m=*/250.0);
  topo.set_labels(std::move(labels));
  return Scenario{std::move(name), std::move(topo), std::move(specs),
                  {}, {}, {}};
}

AbstractExample fig4_example() {
  // Subflow global indices: F1.1=0, F2.1=1, F2.2=2, F3.1=3, F4.1=4.
  // Paper's weighted subflow contention graph: the 4-clique
  // {F1.1, F2.1, F2.2, F3.1} plus the edge {F3.1, F4.1}.
  return AbstractExample{
      make_abstract_scenario({1, 2, 1, 1}, {1.0, 2.0, 3.0, 2.0}, "fig4"),
      {{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}, {3, 4}}};
}

AbstractExample pentagon_example() {
  // Five unit-weight single-hop flows whose contention graph is the cycle
  // C5 (each vertex contends with exactly its two ring neighbors).
  return AbstractExample{
      make_abstract_scenario({1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}, "pentagon"),
      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}};
}

}  // namespace e2efa
