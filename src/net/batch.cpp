#include "net/batch.hpp"

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace e2efa {

std::string metrics_seed_path(const std::string& path, std::uint64_t seed) {
  const std::string tag = ".seed" + std::to_string(seed);
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

BatchRunner::BatchRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

std::vector<RunResult> BatchRunner::run(const std::vector<Job>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  if (jobs.empty()) return results;

  auto run_one = [&](std::size_t i) {
    results[i] = run_scenario(*jobs[i].scenario, jobs[i].protocol, jobs[i].config);
  };

  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), jobs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        run_one(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

std::vector<RunResult> BatchRunner::run_seeds(
    const Scenario& sc, Protocol proto, const SimConfig& base,
    const std::vector<std::uint64_t>& seeds) const {
  std::vector<Job> jobs(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    jobs[i] = {&sc, proto, base};
    jobs[i].config.seed = seeds[i];
  }
  return run(jobs);
}

bool BatchRunner::run_seeds_with_metrics(
    const Scenario& sc, Protocol proto, const SimConfig& base,
    const std::vector<std::uint64_t>& seeds, const std::string& metrics_out,
    std::vector<RunResult>* results, std::string* error) const {
  E2EFA_ASSERT(results != nullptr && error != nullptr);
  E2EFA_ASSERT_MSG(base.metrics_period_seconds > 0,
                   "run_seeds_with_metrics needs metrics_period_seconds > 0");
  *results = run_seeds(sc, proto, base, seeds);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (!write_metrics_jsonl((*results)[i].metrics,
                             metrics_seed_path(metrics_out, seeds[i]), error))
      return false;
  }
  return true;
}

std::vector<RunResult> BatchRunner::run_protocols(
    const Scenario& sc, const std::vector<Protocol>& protos,
    const SimConfig& cfg) const {
  std::vector<Job> jobs(protos.size());
  for (std::size_t i = 0; i < protos.size(); ++i) jobs[i] = {&sc, protos[i], cfg};
  return run(jobs);
}

}  // namespace e2efa
