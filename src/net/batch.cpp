#include "net/batch.hpp"

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace e2efa {

BatchRunner::BatchRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

std::vector<RunResult> BatchRunner::run(const std::vector<Job>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  if (jobs.empty()) return results;

  auto run_one = [&](std::size_t i) {
    results[i] = run_scenario(*jobs[i].scenario, jobs[i].protocol, jobs[i].config);
  };

  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), jobs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        run_one(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

std::vector<RunResult> BatchRunner::run_seeds(
    const Scenario& sc, Protocol proto, const SimConfig& base,
    const std::vector<std::uint64_t>& seeds) const {
  std::vector<Job> jobs(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    jobs[i] = {&sc, proto, base};
    jobs[i].config.seed = seeds[i];
  }
  return run(jobs);
}

std::vector<RunResult> BatchRunner::run_protocols(
    const Scenario& sc, const std::vector<Protocol>& protos,
    const SimConfig& cfg) const {
  std::vector<Job> jobs(protos.size());
  for (std::size_t i = 0; i < protos.size(); ++i) jobs[i] = {&sc, protos[i], cfg};
  return run(jobs);
}

}  // namespace e2efa
