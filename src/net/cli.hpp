// Command-line front end for the scenario runner (used by tools/e2efa_sim).
//
// Scenario specs:  "1" | "2" (the paper's topologies), "chain:N" (one flow
// across an N-hop chain), "grid:RxC" (four corner-to-corner flows on an
// RxC grid), "random:N" (N nodes, N/3 random flows).
// Protocol specs:  "802.11" | "two-tier" | "two-tier-mm" | "2pa-c" |
//                  "2pa-d" | "2pa-dctrl" | "maxmin".
#pragma once

#include <optional>
#include <string>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "util/rng.hpp"

namespace e2efa {

struct CliOptions {
  std::string scenario = "1";
  Protocol protocol = Protocol::k2paCentralized;
  SimConfig config;
  bool list_shares = false;  ///< Also print phase-1 target shares.
  /// --loss P: default packet-error rate applied to every link of the
  /// scenario (on top of any loss/fault directives a scenario file sets).
  double default_loss = 0.0;
  /// --trace PATH: structured-event trace output. A ".jsonl" suffix selects
  /// the text format; anything else writes the compact binary format.
  std::string trace_path;
  /// --trace-filter CATS: comma-separated category list (parse_trace_filter
  /// syntax). Only meaningful with --trace; rejected without it.
  std::string trace_filter;
  /// --metrics-out PATH: periodic metrics JSONL. --metrics-period T sets
  /// SimConfig::metrics_period_seconds and is rejected without a path;
  /// a path alone defaults the period to 1 s.
  std::string metrics_out;
  /// --check: run with every invariant oracle armed (src/check) and report
  /// violations after the table; a violation makes the tool exit nonzero.
  /// The checked trajectory is bit-identical to an unchecked run.
  bool check = false;
  /// --profile PATH: self-profiler JSON (wall-clock phase accounting in the
  /// BENCH_scale.json row schema).
  std::string profile_out;
  /// --flight-out PATH: flight-recorder dump target. Requires --check; when
  /// no --trace sink is streaming, a bounded in-memory ring is armed so a
  /// violation still yields the recent event history as a binary trace.
  std::string flight_out;
  /// --churn RATE:LIFE: open-loop flow churn over the scenario's flows.
  /// Flow 0 founds the network at t = 0; every later flow arrives after a
  /// cumulative Exp(1/RATE) gap and departs Exp(LIFE) seconds later (both
  /// seeded from --seed, so runs are reproducible). Arrivals pass through
  /// the protocol's admission gate.
  double churn_rate = 0.0;  ///< Mean arrivals per second (0 = off).
  double churn_life = 0.0;  ///< Mean flow lifetime in seconds.
  /// --mobility K:SPEED: K random-waypoint walkers at SPEED m/s (walker
  /// picks and walk seeds derived from --seed).
  int mobility_walkers = 0;
  double mobility_speed = 0.0;
  /// --transport K: override the scenario's source model (cbr | aimd | bbr).
  /// Empty (default) keeps whatever the scenario specifies.
  std::string transport;
};

/// Parses argv. On error returns nullopt and fills *error with a message
/// (also used for --help, with an empty error).
std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                    std::string* error);

/// Usage text for the CLI tool.
std::string cli_usage();

/// Parses a protocol spec; nullopt when unknown.
std::optional<Protocol> parse_protocol(const std::string& s);

/// Builds a scenario from its spec; throws ContractViolation on a malformed
/// spec. `rng` seeds "random:N" placements.
Scenario make_named_scenario(const std::string& spec, Rng& rng);

/// Applies the --churn / --mobility / --transport options to a built
/// scenario (no-op when all are off). Churn fills sc.activity as on CliOptions;
/// mobility appends walkers for the first K nodes drawn without
/// replacement. Deterministic in (sc, opt.config.seed).
void apply_cli_dynamics(Scenario& sc, const CliOptions& opt);

/// Renders a RunResult as the standard report table.
std::string format_run_result(const Scenario& sc, const RunResult& r,
                              const SimConfig& cfg, bool list_shares);

}  // namespace e2efa
