// Deterministic fault injection: scheduled node/link failures and lossy
// channels, plus the runtime object that feeds them to the PHY.
//
// A FaultPlan is part of the scenario, not the engine: it lists *when* each
// node crashes or recovers, when each link is forced down or back up, and
// which links suffer a packet-error rate. Because the whole plan is known at
// setup, the runner can precompute the surviving topology (a TopologyMask)
// for every fault epoch, pre-route every flow's repair path, and schedule
// the epoch transitions as ordinary simulator events — faults cost nothing
// at steady state and the whole run stays bit-reproducible from its seed.
//
// FaultRuntime is the live counterpart: it holds the *current* mask (the
// runner applies the precomputed mask at each epoch boundary) and the
// loss-model RNG, and implements the phy::FaultModel interface the Channel
// consults per frame. The RNG stream is derived from the run seed but
// independent of every other stream in the run, so adding a loss-free fault
// plan perturbs nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "topology/topology.hpp"
#include "phy/channel.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace e2efa {

/// One scheduled state change of a node or link.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kNodeDown,  ///< Node crashes: radio off (RF-silent and deaf).
    kNodeUp,    ///< Node recovers.
    kLinkDown,  ///< Link fades out: frames between the pair undecodable.
    kLinkUp,    ///< Link recovers.
  };
  Kind kind;
  double at_s = 0.0;     ///< Simulation time of the change, seconds.
  NodeId node = kInvalidNode;  ///< Target node (node events) or endpoint a.
  NodeId peer = kInvalidNode;  ///< Endpoint b (link events only).
};

/// A static per-link packet-error rate (applied in both directions).
struct LossRule {
  NodeId a = kInvalidNode;  ///< kInvalidNode on both endpoints = all links.
  NodeId b = kInvalidNode;
  double per = 0.0;  ///< Probability a clean reception is lost, in [0, 1].
};

/// The scenario's complete fault schedule. Times are in seconds because the
/// scenario layer speaks seconds; the runner converts to TimeNs when it
/// schedules the epoch transitions.
class FaultPlan {
 public:
  /// Node `n` crashes at `at_s` / recovers at `at_s`.
  void node_down(NodeId n, double at_s);
  void node_up(NodeId n, double at_s);
  /// Link a<->b goes down at `at_s` / recovers at `at_s`.
  void link_down(NodeId a, NodeId b, double at_s);
  void link_up(NodeId a, NodeId b, double at_s);
  /// Sets the packet-error rate of link a<->b (both directions).
  void set_loss(NodeId a, NodeId b, double per);
  /// Sets the default packet-error rate of every link without its own rule.
  void set_default_loss(double per);

  const std::vector<FaultEvent>& events() const { return events_; }
  const std::vector<LossRule>& loss_rules() const { return loss_rules_; }
  double default_loss() const { return default_loss_; }

  /// True when the plan changes nothing: no scheduled events and no loss.
  bool empty() const { return events_.empty() && !has_loss(); }
  /// True when any link has a nonzero packet-error rate.
  bool has_loss() const;

  /// Distinct event times in ascending order (the fault epochs).
  std::vector<double> event_times() const;

  /// The surviving topology at time `at_s`: every event with at_s <= t
  /// applied, in order. `node_count` sizes the node-up vector.
  TopologyMask mask_at(double at_s, int node_count) const;

  /// Packet-error rate of link a->b under the loss rules (symmetric; the
  /// most recently added matching specific rule wins, else the default).
  double loss(NodeId a, NodeId b) const;

  /// Validates every event and rule against a topology of `node_count`
  /// nodes; throws ContractViolation on out-of-range nodes, self-links,
  /// negative times, or rates outside [0, 1].
  void validate(int node_count) const;

 private:
  std::vector<FaultEvent> events_;
  std::vector<LossRule> loss_rules_;
  double default_loss_ = 0.0;
};

/// Live fault state consulted by the Channel. The runner applies the
/// precomputed TopologyMask of each epoch at its boundary; loss draws come
/// from an Rng stream derived from (seed, fixed salt) so they are
/// independent of the per-node MAC streams.
class FaultRuntime final : public FaultModel {
 public:
  FaultRuntime(const FaultPlan& plan, int node_count, std::uint64_t seed);

  /// Installs the surviving topology of the epoch that just started.
  void apply(const TopologyMask& mask) { mask_ = mask; }
  const TopologyMask& mask() const { return mask_; }

  // FaultModel:
  bool node_up(NodeId n) const override { return mask_.node_alive(n); }
  bool link_up(NodeId a, NodeId b) const override { return mask_.link_alive(a, b); }
  bool lossy(NodeId a, NodeId b) const override;
  bool draw_loss(NodeId a, NodeId b) override;

 private:
  const FaultPlan& plan_;
  TopologyMask mask_;
  Rng rng_;
  bool any_loss_ = false;
};

}  // namespace e2efa
